// Integration and property tests for the Temporal Graph Index.
//
// The central invariant: every retrieval primitive must agree with a direct
// replay of the event log. Parameterized suites sweep the index's tuning
// space (eventlist size, partition size, strategy, clustering order,
// replication) to assert the invariant holds across configurations.

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "tgi/layout.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions FastCluster(size_t nodes = 2) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.latency.enabled = false;
  return opts;
}

std::vector<Event> SmallHistory(uint64_t seed = 1, uint64_t n = 6'000) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 7});
}

TGIOptions SmallOptions() {
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  return opts;
}

// ---------------------------------------------------------------------------
// Layout unit tests.
// ---------------------------------------------------------------------------

TEST(LayoutTest, DeltaRowKeyRoundTrip) {
  for (ClusteringOrder order :
       {ClusteringOrder::kDeltaMajor, ClusteringOrder::kPartitionMajor}) {
    std::string key = tgi::DeltaRowKey(order, 12345, 678, true);
    DeltaId did;
    MicroPartitionId pid;
    bool aux;
    ASSERT_TRUE(tgi::ParseDeltaRowKey(order, key, &did, &pid, &aux));
    EXPECT_EQ(did, 12345u);
    EXPECT_EQ(pid, 678u);
    EXPECT_TRUE(aux);
  }
}

TEST(LayoutTest, DeltaMajorClustersMicroPartitionsOfOneDelta) {
  // All pids of one did share the DeltaScanPrefix; aux rows do not.
  std::string prefix = tgi::DeltaScanPrefix(42);
  for (MicroPartitionId pid : {0u, 1u, 99u}) {
    std::string key =
        tgi::DeltaRowKey(ClusteringOrder::kDeltaMajor, 42, pid, false);
    EXPECT_EQ(key.compare(0, prefix.size(), prefix), 0);
    std::string aux_key =
        tgi::DeltaRowKey(ClusteringOrder::kDeltaMajor, 42, pid, true);
    EXPECT_NE(aux_key.compare(0, prefix.size(), prefix), 0);
  }
}

TEST(LayoutTest, EventlistDidNamespaceDisjointFromTree) {
  EXPECT_GE(tgi::EventlistDid(0), tgi::kEventlistDidBase);
  EXPECT_LT(DeltaId{1000}, tgi::kEventlistDidBase);
}

TEST(MetadataTest, TimespanMetaRoundTrip) {
  tgi::TimespanMeta m;
  m.tsid = 3;
  m.start = 100;
  m.end = 200;
  m.event_count = 50;
  m.eventlist_size = 10;
  m.checkpoint_interval = 20;
  m.num_micro_partitions = 4;
  m.strategy = 1;
  m.checkpoints = {99, 120, 140};
  m.eventlist_bounds = {{100, 109}, {110, 119}};
  m.tree = {{-1, -1}, {0, 0}, {0, 1}};
  BinaryWriter w;
  m.SerializeTo(&w);
  std::string buf = w.Finish();
  BinaryReader r(buf);
  auto back = tgi::TimespanMeta::DeserializeFrom(&r);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

TEST(MetadataTest, PathToCheckpointClimbsToRoot) {
  tgi::TimespanMeta m;
  // Root 0 with children 1 (internal) and 4 (leaf cp2); 1 has leaves 2,3.
  m.tree = {{-1, -1}, {0, -1}, {1, 0}, {1, 1}, {0, 2}};
  auto path = m.PathToCheckpoint(1);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(path[0], 0u);
  EXPECT_EQ(path[1], 1u);
  EXPECT_EQ(path[2], 3u);
  auto path2 = m.PathToCheckpoint(2);
  ASSERT_EQ(path2.size(), 2u);
  EXPECT_EQ(path2[1], 4u);
}

TEST(MetadataTest, VersionChainSegmentRoundTrip) {
  tgi::VersionChainSegment seg;
  seg.node = 77;
  seg.tsid = 2;
  seg.pid = 5;
  seg.entries = {{2, 0, 5, 10, 20, 3}, {2, 4, 5, 90, 95, 2}};
  auto back = tgi::VersionChainSegment::Deserialize(seg.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, seg);
}

TEST(MetadataTest, GraphMetaRoundTrip) {
  tgi::GraphMeta m;
  m.start = 1;
  m.end = 999;
  m.event_count = 12345;
  m.timespan_count = 7;
  m.num_horizontal_partitions = 4;
  m.clustering_order = 1;
  m.replicate_one_hop = true;
  m.micropartition_buckets = 32;
  auto back = tgi::GraphMeta::Deserialize(m.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, m);
}

// ---------------------------------------------------------------------------
// Builder validation.
// ---------------------------------------------------------------------------

TEST(BuilderTest, RejectsDecreasingTimestamps) {
  Cluster cluster(FastCluster());
  TGIBuilder builder(&cluster, SmallOptions());
  std::vector<Event> bad = {Event::AddNode(5, 1), Event::AddNode(4, 2)};
  EXPECT_EQ(builder.Ingest(bad).code(), StatusCode::kInvalidArgument);
}

TEST(BuilderTest, AcceptsAndServesSameTimestampEvents) {
  // Simultaneous events are legal; snapshots at and around the shared
  // timestamp must match a direct replay.
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  std::vector<Event> events = {
      Event::AddNode(1, 1), Event::AddNode(1, 2),  Event::AddNode(2, 3),
      Event::AddEdge(3, 1, 2), Event::AddEdge(3, 2, 3),
      Event::SetNodeAttr(3, 1, "k", "v"), Event::RemoveEdge(4, 1, 2)};
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager().value();
  for (Timestamp t : {1, 2, 3, 4}) {
    auto snap = qm->GetSnapshot(t);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(*snap == workload::ReplayToGraph(events, t)) << "t=" << t;
  }
  auto hist = qm->GetNodeHistory(1, 0, 4);
  ASSERT_TRUE(hist.ok());
  ASSERT_EQ(hist->events.size(), 4u);  // add, edge, attr, remove-edge
}

TEST(BuilderTest, EmptyHistoryFinishes) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  ASSERT_TRUE(tgi.BuildFrom({}).ok());
  auto qm = tgi.OpenQueryManager();
  ASSERT_TRUE(qm.ok());
  auto snap = (*qm)->GetSnapshot(100);
  ASSERT_TRUE(snap.ok());
  EXPECT_EQ(snap->NumNodes(), 0u);
}

TEST(BuilderTest, TracksCurrentState) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(3, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  Graph expected = workload::ReplayToGraph(events, kMaxTimestamp);
  EXPECT_TRUE(tgi.builder()->current_state() == expected);
}

// ---------------------------------------------------------------------------
// The core invariant, swept across configurations.
// Params: (strategy, clustering order, replicate, horizontal partitions).
// ---------------------------------------------------------------------------

using ConfigParam = std::tuple<PartitionStrategy, ClusteringOrder, bool, int>;

class TGIConfigTest : public ::testing::TestWithParam<ConfigParam> {
 protected:
  TGIOptions OptionsFromParam() {
    TGIOptions opts = SmallOptions();
    opts.partition_strategy = std::get<0>(GetParam());
    opts.clustering_order = std::get<1>(GetParam());
    opts.replicate_one_hop = std::get<2>(GetParam());
    opts.num_horizontal_partitions =
        static_cast<size_t>(std::get<3>(GetParam()));
    return opts;
  }
};

TEST_P(TGIConfigTest, SnapshotsMatchReplayEverywhere) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, OptionsFromParam());
  auto events = SmallHistory(11, 5'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm_or = tgi.OpenQueryManager(/*fetch_parallelism=*/4);
  ASSERT_TRUE(qm_or.ok());
  auto& qm = *qm_or;

  // Probe before history, at several interior points (including span and
  // checkpoint boundaries), and beyond the end.
  std::vector<Timestamp> probes = {-5, 0};
  for (size_t frac = 1; frac <= 10; ++frac) {
    probes.push_back(events[events.size() * frac / 10 - 1].time);
  }
  probes.push_back(workload::EndTime(events) + 50);
  for (Timestamp t : probes) {
    auto snap = qm->GetSnapshot(t);
    ASSERT_TRUE(snap.ok()) << "t=" << t << ": " << snap.status().ToString();
    Graph expected = workload::ReplayToGraph(events, t);
    EXPECT_TRUE(*snap == expected)
        << "snapshot mismatch at t=" << t << " (got " << snap->NumNodes()
        << "/" << snap->NumEdges() << " nodes/edges, want "
        << expected.NumNodes() << "/" << expected.NumEdges() << ")";
  }
}

TEST_P(TGIConfigTest, NodeStatesMatchReplay) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, OptionsFromParam());
  auto events = SmallHistory(13, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm_or = tgi.OpenQueryManager();
  ASSERT_TRUE(qm_or.ok());
  auto& qm = *qm_or;

  Rng rng(5);
  Timestamp t = events[events.size() * 3 / 4].time;
  Graph expected = workload::ReplayToGraph(events, t);
  auto ids = expected.NodeIds();
  ASSERT_FALSE(ids.empty());
  for (int trial = 0; trial < 25; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto state = qm->GetNodeStateDelta(id, t);
    ASSERT_TRUE(state.ok());
    const auto* rec = state->FindNode(id);
    ASSERT_NE(rec, nullptr) << "node " << id << " missing at t=" << t;
    ASSERT_TRUE(rec->has_value());
    EXPECT_EQ((*rec)->attrs, expected.GetNode(id)->attrs);
    // Incident edges must match the replayed adjacency.
    size_t edge_count = 0;
    state->ForEachEdgeEntry(
        [&](const EdgeKey& key, const std::optional<EdgeRecord>& e) {
          if (e.has_value() && (key.u == id || key.v == id)) ++edge_count;
        });
    EXPECT_EQ(edge_count, expected.Neighbors(id).size()) << "node " << id;
  }
}

TEST_P(TGIConfigTest, NodeHistoryMatchesLogFilter) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, OptionsFromParam());
  auto events = SmallHistory(17, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm_or = tgi.OpenQueryManager();
  ASSERT_TRUE(qm_or.ok());
  auto& qm = *qm_or;

  Timestamp from = events[events.size() / 4].time;
  Timestamp to = events[events.size() * 3 / 4].time;
  Rng rng(6);
  Graph at_from = workload::ReplayToGraph(events, from);
  auto ids = at_from.NodeIds();
  for (int trial = 0; trial < 20; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto hist = qm->GetNodeHistory(id, from, to);
    ASSERT_TRUE(hist.ok());
    // Expected: all events touching the node in (from, to].
    std::vector<Event> expected;
    for (const Event& e : events) {
      if (e.time > from && e.time <= to && e.Touches(id)) {
        expected.push_back(e);
      }
    }
    ASSERT_EQ(hist->events.size(), expected.size()) << "node " << id;
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(hist->events.events()[i], expected[i]);
    }
    // Initial state matches replay at `from`.
    const auto* rec = hist->initial.FindNode(id);
    bool existed = at_from.HasNode(id);
    EXPECT_EQ(rec != nullptr && rec->has_value(), existed);
  }
}

TEST_P(TGIConfigTest, OneHopNeighborhoodMatchesReplay) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, OptionsFromParam());
  auto events = SmallHistory(19, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm_or = tgi.OpenQueryManager();
  ASSERT_TRUE(qm_or.ok());
  auto& qm = *qm_or;

  Timestamp t = events[events.size() / 2].time;
  Graph expected = workload::ReplayToGraph(events, t);
  Rng rng(7);
  auto ids = expected.NodeIds();
  for (int trial = 0; trial < 15; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto hood = qm->GetKHopNeighborhood(id, t, 1);
    ASSERT_TRUE(hood.ok());
    // Node set must be exactly {id} ∪ neighbors(id).
    std::unordered_set<NodeId> want{id};
    for (NodeId n : expected.Neighbors(id)) want.insert(n);
    EXPECT_EQ(hood->NumNodes(), want.size()) << "center " << id;
    for (NodeId n : want) {
      EXPECT_TRUE(hood->HasNode(n)) << "missing " << n;
    }
    // All center-incident edges present.
    for (NodeId n : expected.Neighbors(id)) {
      EXPECT_TRUE(hood->HasEdge(id, n));
    }
  }
}

TEST_P(TGIConfigTest, TwoHopCoversBfsSet) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, OptionsFromParam());
  auto events = SmallHistory(23, 3'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm_or = tgi.OpenQueryManager();
  ASSERT_TRUE(qm_or.ok());
  auto& qm = *qm_or;

  Timestamp t = workload::EndTime(events);
  Graph expected = workload::ReplayToGraph(events, t);
  Rng rng(8);
  auto ids = expected.NodeIds();
  for (int trial = 0; trial < 8; ++trial) {
    NodeId id = ids[rng.Uniform(ids.size())];
    auto hood = qm->GetKHopNeighborhood(id, t, 2);
    ASSERT_TRUE(hood.ok());
    auto bfs = algo::BfsDistances(expected, id, 2);
    EXPECT_EQ(hood->NumNodes(), bfs.size()) << "center " << id;
    for (const auto& [n, d] : bfs) {
      EXPECT_TRUE(hood->HasNode(n));
    }
  }
}

// GetNodeHistories must agree byte-for-byte with per-node GetNodeHistory
// across every index configuration, including missing and duplicated ids
// and id sets spanning many partitions.
TEST_P(TGIConfigTest, BulkNodeHistoriesMatchPerNode) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, OptionsFromParam());
  auto events = SmallHistory(67, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm_or = tgi.OpenQueryManager(/*fetch_parallelism=*/3);
  ASSERT_TRUE(qm_or.ok());
  auto& qm = *qm_or;

  Timestamp from = events[events.size() / 4].time;
  Timestamp to = events[events.size() * 3 / 4].time;
  Graph at_from = workload::ReplayToGraph(events, from);
  auto pool = at_from.NodeIds();
  ASSERT_GE(pool.size(), 12u);
  std::vector<NodeId> ids(pool.begin(), pool.begin() + 12);
  ids.push_back(ids[0]);             // duplicate
  ids.push_back(1'000'000'000);      // never existed
  ids.push_back(987'654'321);        // never existed

  auto bulk = qm->GetNodeHistories(ids, from, to);
  ASSERT_TRUE(bulk.ok());
  ASSERT_EQ(bulk->size(), ids.size());
  for (size_t i = 0; i < ids.size(); ++i) {
    auto single = qm->GetNodeHistory(ids[i], from, to);
    ASSERT_TRUE(single.ok());
    const NodeHistory& b = (*bulk)[i];
    EXPECT_EQ(b.node, single->node) << "i=" << i;
    EXPECT_EQ(b.from, single->from);
    EXPECT_EQ(b.to, single->to);
    EXPECT_TRUE(b.initial == single->initial) << "node " << ids[i];
    EXPECT_TRUE(b.events == single->events) << "node " << ids[i];
  }
  // Missing ids produce empty histories.
  EXPECT_TRUE(bulk->back().events.empty());
  EXPECT_TRUE(bulk->back().initial == Delta());
}

TEST(TGITest, BulkHistoriesDeduplicateSharedEventlists) {
  // One giant micro-partition co-locates every node, so busy nodes share
  // micro-eventlists: the bulk fetch must retrieve each shared eventlist
  // once and issue strictly fewer round trips than per-node retrievals.
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallOptions();
  opts.micro_delta_size = 1'000'000;  // k_parts == 1: all nodes co-partitioned
  TGI tgi(&cluster, opts);
  auto events = SmallHistory(71, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());

  // Uncached managers: kv_batches then counts physical fetches only.
  TGIQueryManager bulk_qm(&cluster, 2, /*read_cache_bytes=*/0);
  ASSERT_TRUE(bulk_qm.Open().ok());
  TGIQueryManager single_qm(&cluster, 2, /*read_cache_bytes=*/0);
  ASSERT_TRUE(single_qm.Open().ok());

  // The busiest nodes: guaranteed to share eventlists with each other.
  std::unordered_map<NodeId, int> touches;
  for (const Event& e : events) {
    ++touches[e.u];
    if (e.IsEdgeEvent()) ++touches[e.v];
  }
  std::vector<std::pair<int, NodeId>> ranked;
  for (auto [id, cnt] : touches) ranked.emplace_back(cnt, id);
  std::sort(ranked.rbegin(), ranked.rend());
  std::vector<NodeId> ids;
  for (size_t i = 0; i < 8 && i < ranked.size(); ++i) {
    ids.push_back(ranked[i].second);
  }
  Timestamp to = workload::EndTime(events);

  FetchStats bulk_stats;
  auto bulk = bulk_qm.GetNodeHistories(ids, 0, to, &bulk_stats);
  ASSERT_TRUE(bulk.ok());

  FetchStats single_stats;
  std::vector<NodeHistory> singles;
  for (NodeId id : ids) {
    auto h = single_qm.GetNodeHistory(id, 0, to, &single_stats);
    ASSERT_TRUE(h.ok());
    singles.push_back(std::move(*h));
  }

  // Identical results...
  for (size_t i = 0; i < ids.size(); ++i) {
    EXPECT_TRUE((*bulk)[i].initial == singles[i].initial) << "node " << ids[i];
    EXPECT_TRUE((*bulk)[i].events == singles[i].events) << "node " << ids[i];
  }
  // ...at a fraction of the physical cost. Logical accounting first:
  EXPECT_EQ(bulk_stats.node_requests, ids.size());
  EXPECT_EQ(single_stats.node_requests, ids.size());
  EXPECT_EQ(bulk_stats.version_scans, ids.size());  // one per touched part.
  EXPECT_EQ(bulk_stats.eventlist_refs, single_stats.eventlist_refs);
  // Shared eventlists are fetched once in the bulk path.
  EXPECT_LT(bulk_stats.eventlist_fetches, bulk_stats.eventlist_refs);
  EXPECT_LT(bulk_stats.eventlist_fetches, single_stats.eventlist_fetches);
  // Strictly fewer physical round trips than N per-node retrievals.
  EXPECT_LT(bulk_stats.kv_batches, single_stats.kv_batches);
}

TEST(TGITest, BulkHistoriesDuplicateIdsFetchOnce) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(73, 3'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  TGIQueryManager qm(&cluster, 1, /*read_cache_bytes=*/0);
  ASSERT_TRUE(qm.Open().ok());
  Timestamp to = workload::EndTime(events);
  NodeId busy = events.front().u;

  FetchStats stats;
  auto hists = qm.GetNodeHistories({busy, busy, busy}, 0, to, &stats);
  ASSERT_TRUE(hists.ok());
  ASSERT_EQ(hists->size(), 3u);
  EXPECT_TRUE((*hists)[0].events == (*hists)[1].events);
  EXPECT_TRUE((*hists)[1].events == (*hists)[2].events);
  // Three logical requests, one physical retrieval.
  EXPECT_EQ(stats.node_requests, 3u);
  EXPECT_EQ(stats.version_scans, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Configs, TGIConfigTest,
    ::testing::Values(
        ConfigParam{PartitionStrategy::kRandom, ClusteringOrder::kDeltaMajor,
                    false, 2},
        ConfigParam{PartitionStrategy::kRandom,
                    ClusteringOrder::kPartitionMajor, false, 2},
        ConfigParam{PartitionStrategy::kLocality, ClusteringOrder::kDeltaMajor,
                    false, 2},
        ConfigParam{PartitionStrategy::kRandom, ClusteringOrder::kDeltaMajor,
                    true, 2},
        ConfigParam{PartitionStrategy::kLocality,
                    ClusteringOrder::kDeltaMajor, true, 3},
        ConfigParam{PartitionStrategy::kRandom, ClusteringOrder::kDeltaMajor,
                    false, 1}));

// ---------------------------------------------------------------------------
// Targeted behaviors beyond the core invariant.
// ---------------------------------------------------------------------------

TEST(TGITest, NodeVersionsReplayChronologically) {
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallOptions();
  Cluster c2(FastCluster());
  TGI tgi(&c2, opts);
  auto events = SmallHistory(29, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager().value();

  // Find a node with several changes.
  std::unordered_map<NodeId, int> touch_count;
  for (const Event& e : events) {
    ++touch_count[e.u];
    if (e.IsEdgeEvent()) ++touch_count[e.v];
  }
  NodeId busy = 0;
  int best = 0;
  for (auto [id, cnt] : touch_count) {
    if (cnt > best) {
      best = cnt;
      busy = id;
    }
  }
  ASSERT_GT(best, 3);
  Timestamp from = 0;
  Timestamp to = workload::EndTime(events);
  auto versions = qm->GetNodeVersions(busy, from, to);
  ASSERT_TRUE(versions.ok());
  EXPECT_EQ(versions->size(), static_cast<size_t>(best) + 1);
  for (size_t i = 1; i < versions->size(); ++i) {
    EXPECT_GT((*versions)[i].first, (*versions)[i - 1].first);
  }
  // Final version equals the node's final state.
  Graph final_state = workload::ReplayToGraph(events, to);
  const auto* rec = versions->back().second.FindNode(busy);
  ASSERT_NE(rec, nullptr);
  EXPECT_EQ(rec->has_value(), final_state.HasNode(busy));
}

TEST(TGITest, OneHopHistoryCoversNeighborEvents) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(31, 3'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager().value();

  Timestamp to = workload::EndTime(events);
  Graph final_state = workload::ReplayToGraph(events, to);
  // Pick the highest-degree node as the center.
  NodeId center = algo::HighestDegreeNode(final_state);
  auto hist = qm->GetOneHopHistory(center, 0, to);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist->center.node, center);
  // Every final neighbor appears among the returned neighbor histories.
  std::unordered_set<NodeId> returned;
  for (const auto& nh : hist->neighbors) returned.insert(nh.node);
  for (NodeId n : final_state.Neighbors(center)) {
    EXPECT_TRUE(returned.contains(n)) << "neighbor " << n;
  }
}

TEST(TGITest, BatchUpdateAppendsNewTimespans) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(37, 6'000);
  size_t half = events.size() / 2;
  std::vector<Event> first(events.begin(), events.begin() + half);
  std::vector<Event> second(events.begin() + half, events.end());

  ASSERT_TRUE(tgi.BuildFrom(first).ok());
  ASSERT_TRUE(tgi.AppendBatch(second).ok());

  auto qm = tgi.OpenQueryManager().value();
  for (double frac : {0.3, 0.6, 1.0}) {
    Timestamp t = events[static_cast<size_t>(events.size() * frac) - 1].time;
    auto snap = qm->GetSnapshot(t);
    ASSERT_TRUE(snap.ok());
    EXPECT_TRUE(*snap == workload::ReplayToGraph(events, t)) << "t=" << t;
  }
}

TEST(TGITest, SurvivesReplicaFailureWithReplication) {
  ClusterOptions copts = FastCluster(3);
  copts.replication = 2;
  Cluster cluster(copts);
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(41, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  cluster.SetNodeDown(1, true);
  auto qm = tgi.OpenQueryManager(2).value();
  Timestamp t = workload::EndTime(events);
  auto snap = qm->GetSnapshot(t);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_TRUE(*snap == workload::ReplayToGraph(events, t));
}

TEST(TGITest, FailsCleanlyWithoutReplicationWhenNodeDown) {
  Cluster cluster(FastCluster(2));
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(43, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  cluster.SetNodeDown(0, true);
  TGIQueryManager qm(&cluster);
  // Either Open or the snapshot fails with IOError — never a crash or a
  // wrong answer.
  Status open_status = qm.Open();
  if (open_status.ok()) {
    auto snap = qm.GetSnapshot(workload::EndTime(events));
    EXPECT_FALSE(snap.ok());
    EXPECT_TRUE(snap.status().IsIOError());
  } else {
    EXPECT_TRUE(open_status.IsIOError());
  }
}

TEST(TGITest, FetchStatsAreAccounted) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(47, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager().value();
  FetchStats snap_stats;
  ASSERT_TRUE(qm->GetSnapshot(workload::EndTime(events), &snap_stats).ok());
  EXPECT_GT(snap_stats.kv_requests, 0u);
  EXPECT_GT(snap_stats.micro_deltas, 0u);
  EXPECT_GT(snap_stats.bytes, 0u);

  // A node-state fetch must touch far less data than a snapshot.
  FetchStats node_stats;
  Graph final_state = workload::ReplayToGraph(events, kMaxTimestamp);
  NodeId some = final_state.NodeIds().front();
  ASSERT_TRUE(
      qm->GetNodeStateDelta(some, workload::EndTime(events), &node_stats)
          .ok());
  EXPECT_LT(node_stats.bytes, snap_stats.bytes / 4);
}

TEST(TGITest, QueryBeforeOpenFails) {
  Cluster cluster(FastCluster());
  TGIQueryManager qm(&cluster);
  EXPECT_EQ(qm.GetSnapshot(10).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(TGITest, CachedSnapshotIdenticalToColdAndHitsAccounted) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(53, 6'000);
  size_t half = events.size() / 2;
  std::vector<Event> first(events.begin(), events.begin() + half);
  std::vector<Event> second(events.begin() + half, events.end());
  ASSERT_TRUE(tgi.BuildFrom(first).ok());

  // Cached manager (TGIOptions default budget) vs an uncached control.
  auto qm = tgi.OpenQueryManager(2).value();
  TGIQueryManager uncached(&cluster, 2, /*read_cache_bytes=*/0);
  ASSERT_TRUE(uncached.Open().ok());

  Timestamp t1 = first[first.size() / 2].time;
  FetchStats cold;
  auto snap_cold = qm->GetSnapshot(t1, &cold);
  ASSERT_TRUE(snap_cold.ok());
  EXPECT_GT(cold.cache_misses, 0u);
  EXPECT_EQ(cold.cache_hits, 0u);

  FetchStats warm;
  auto snap_warm = qm->GetSnapshot(t1, &warm);
  ASSERT_TRUE(snap_warm.ok());
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.kv_batches, 0u);  // fully served from cache
  EXPECT_TRUE(*snap_warm == *snap_cold);
  // Logical counters are identical hot or cold.
  EXPECT_EQ(warm.kv_requests, cold.kv_requests);
  EXPECT_EQ(warm.bytes, cold.bytes);

  auto snap_uncached = uncached.GetSnapshot(t1);
  ASSERT_TRUE(snap_uncached.ok());
  EXPECT_TRUE(*snap_uncached == *snap_warm);

  // AppendBatch re-publishes metadata: the open manager must invalidate
  // its cache and serve the post-append history correctly.
  ASSERT_TRUE(tgi.AppendBatch(second).ok());
  Timestamp t2 = workload::EndTime(events);
  FetchStats post;
  auto snap_post = qm->GetSnapshot(t2, &post);
  ASSERT_TRUE(snap_post.ok());
  EXPECT_EQ(post.cache_hits, 0u);  // cache was dropped on invalidation
  EXPECT_GT(post.cache_misses, 0u);
  EXPECT_TRUE(*snap_post == workload::ReplayToGraph(events, t2));
  // The pre-append timepoint still answers correctly after the refresh.
  auto snap_old = qm->GetSnapshot(t1);
  ASSERT_TRUE(snap_old.ok());
  EXPECT_TRUE(*snap_old == *snap_cold);
}

// ---------------------------------------------------------------------------
// Decoded-object cache tests: warm retrievals must perform zero Deserialize
// calls, invalidation must track AppendBatch, and the byte budget must
// evict under pressure without affecting results.
// ---------------------------------------------------------------------------

TEST(TGITest, WarmDecodedCacheSkipsAllDeserialization) {
  for (ClusteringOrder order :
       {ClusteringOrder::kDeltaMajor, ClusteringOrder::kPartitionMajor}) {
    Cluster cluster(FastCluster());
    TGIOptions opts = SmallOptions();
    opts.clustering_order = order;
    TGI tgi(&cluster, opts);
    auto events = SmallHistory(71, 6'000);
    ASSERT_TRUE(tgi.BuildFrom(events).ok());
    auto qm = tgi.OpenQueryManager(2).value();

    Timestamp t = workload::EndTime(events);
    FetchStats cold;
    auto snap_cold = qm->GetSnapshot(t, &cold);
    ASSERT_TRUE(snap_cold.ok());
    EXPECT_GT(cold.decodes, 0u);
    EXPECT_GT(cold.decoded_bytes, 0u);

    FetchStats warm;
    auto snap_warm = qm->GetSnapshot(t, &warm);
    ASSERT_TRUE(snap_warm.ok());
    EXPECT_EQ(warm.decodes, 0u);  // every value arrives ready-to-apply
    EXPECT_EQ(warm.decoded_bytes, 0u);
    EXPECT_GT(warm.decode_hits, 0u);
    EXPECT_TRUE(*snap_warm == *snap_cold);
    // Logical consumption counters are identical hot or cold.
    EXPECT_EQ(warm.micro_deltas, cold.micro_deltas);
    EXPECT_EQ(warm.bytes, cold.bytes);

    // Bulk node histories: version segments, eventlists and initial-state
    // micro-deltas are all decoded-cached too.
    std::vector<NodeId> ids;
    for (const Event& e : events) {
      if (ids.size() >= 8) break;
      if (e.type == EventType::kAddNode) ids.push_back(e.u);
    }
    FetchStats hist_cold;
    auto hists_cold = qm->GetNodeHistories(ids, 0, t, &hist_cold);
    ASSERT_TRUE(hists_cold.ok());
    FetchStats hist_warm;
    auto hists_warm = qm->GetNodeHistories(ids, 0, t, &hist_warm);
    ASSERT_TRUE(hists_warm.ok());
    EXPECT_EQ(hist_warm.decodes, 0u);
    EXPECT_GT(hist_warm.decode_hits, 0u);
    for (size_t i = 0; i < ids.size(); ++i) {
      EXPECT_TRUE((*hists_warm)[i].initial == (*hists_cold)[i].initial);
      EXPECT_TRUE((*hists_warm)[i].events == (*hists_cold)[i].events);
    }
  }
}

TEST(TGITest, DecodedTierWorksWithoutByteCache) {
  // The tiers are independent: with the partition-delta (byte) cache
  // disabled, repeats of point-read-shaped fetches are still served
  // decoded — and skip the cluster round trips entirely.
  Cluster cluster(FastCluster());
  TGIOptions opts = SmallOptions();
  opts.clustering_order = ClusteringOrder::kPartitionMajor;
  TGI tgi(&cluster, opts);
  auto events = SmallHistory(72, 5'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  TGIQueryManager qm(&cluster, 2, /*read_cache_bytes=*/0,
                     /*read_cache_shards=*/16,
                     /*decoded_cache_bytes=*/16u << 20);
  ASSERT_TRUE(qm.Open().ok());

  Timestamp t = workload::EndTime(events);
  FetchStats cold;
  auto snap_cold = qm.GetSnapshot(t, &cold);
  ASSERT_TRUE(snap_cold.ok());
  EXPECT_GT(cold.kv_batches, 0u);
  EXPECT_GT(cold.decodes, 0u);

  FetchStats warm;
  auto snap_warm = qm.GetSnapshot(t, &warm);
  ASSERT_TRUE(snap_warm.ok());
  EXPECT_EQ(warm.decodes, 0u);
  EXPECT_EQ(warm.kv_batches, 0u);  // decoded hits never touch the cluster
  EXPECT_TRUE(*snap_warm == *snap_cold);
}

TEST(TGITest, DecodedCacheInvalidatedByAppendBatch) {
  // Stale decoded objects must not survive a re-publish: every key carries
  // its scope's sub-epoch, and the refresh sweeps re-published scopes.
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(73, 6'000);
  size_t half = events.size() / 2;
  std::vector<Event> first(events.begin(), events.begin() + half);
  std::vector<Event> second(events.begin() + half, events.end());
  ASSERT_TRUE(tgi.BuildFrom(first).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp t1 = first[first.size() / 2].time;
  ASSERT_TRUE(qm->GetSnapshot(t1).ok());  // warm the decoded tier
  FetchStats warm;
  ASSERT_TRUE(qm->GetSnapshot(t1, &warm).ok());
  EXPECT_EQ(warm.decodes, 0u);

  ASSERT_TRUE(tgi.AppendBatch(second).ok());
  Timestamp t2 = workload::EndTime(events);
  FetchStats post;
  auto snap_post = qm->GetSnapshot(t2, &post);
  ASSERT_TRUE(snap_post.ok());
  EXPECT_GT(post.decodes, 0u);  // the new span's rows are necessarily cold
  EXPECT_TRUE(*snap_post == workload::ReplayToGraph(events, t2));
  auto snap_old = qm->GetSnapshot(t1);
  ASSERT_TRUE(snap_old.ok());
  EXPECT_TRUE(*snap_old == workload::ReplayToGraph(events, t1));
}

TEST(TGITest, DecodedCacheEvictsUnderByteBudgetPressure) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(74, 6'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  // A budget far below the working set: entries must be admitted and
  // evicted continuously, with results unaffected.
  TGIQueryManager qm(&cluster, 2, /*read_cache_bytes=*/0,
                     /*read_cache_shards=*/2,
                     /*decoded_cache_bytes=*/8u << 10);
  ASSERT_TRUE(qm.Open().ok());
  Timestamp t = workload::EndTime(events);
  auto first = qm.GetSnapshot(t);
  ASSERT_TRUE(first.ok());
  auto second = qm.GetSnapshot(t);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(*first == *second);
  EXPECT_TRUE(*first == workload::ReplayToGraph(events, t));
  LruCacheCounters counters = qm.DecodedCacheCounters();
  EXPECT_GT(counters.insertions, 0u);
  EXPECT_GT(counters.evictions, 0u);
  EXPECT_LE(counters.bytes_used, 8u << 10);
}

TEST(TGITest, NodeHistoryCacheInvalidatedByAppendBatch) {
  // A node's version-chain scan is cached; AppendBatch adds new segments
  // under the same scan prefix, so a stale cache would lose events.
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(59, 6'000);
  size_t half = events.size() / 2;
  ASSERT_TRUE(
      tgi.BuildFrom({events.begin(), events.begin() + half}).ok());
  auto qm = tgi.OpenQueryManager().value();

  // A node touched in both halves, so stale cached scans would show.
  std::unordered_map<NodeId, int> touches;
  for (size_t i = 0; i < events.size(); ++i) {
    int weight = i < half ? 1 : 1'000'000;
    touches[events[i].u] += weight;
    if (events[i].IsEdgeEvent()) touches[events[i].v] += weight;
  }
  NodeId busy = events.front().u;
  int best = 0;
  for (auto [id, cnt] : touches) {
    if (cnt > best && cnt > 1'000'000) {
      best = cnt;
      busy = id;
    }
  }
  Timestamp end_first = events[half - 1].time;
  ASSERT_TRUE(qm->GetNodeHistory(busy, 0, end_first).ok());

  ASSERT_TRUE(tgi.AppendBatch({events.begin() + half, events.end()}).ok());
  Timestamp end = workload::EndTime(events);
  auto hist = qm->GetNodeHistory(busy, 0, end);
  ASSERT_TRUE(hist.ok());
  std::vector<Event> expected;
  for (const Event& e : events) {
    if (e.time > 0 && e.time <= end && e.Touches(busy)) expected.push_back(e);
  }
  ASSERT_EQ(hist->events.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(hist->events.events()[i], expected[i]);
  }
}

TEST(TGITest, MultiGetBatchingReducesRoundTripsUnderLatency) {
  // Partition-major clustering issues point reads for every (delta, pid)
  // unit: the batched path must collapse them into per-node round trips.
  ClusterOptions copts = FastCluster(2);
  copts.latency.enabled = true;
  copts.latency.seek_micros = 200;
  copts.latency.per_key_micros = 1;
  Cluster cluster(copts);
  TGIOptions opts = SmallOptions();
  opts.clustering_order = ClusteringOrder::kPartitionMajor;
  TGI tgi(&cluster, opts);
  auto events = SmallHistory(61, 4'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp t = workload::EndTime(events);
  FetchStats cold;
  auto snap = qm->GetSnapshot(t, &cold);
  ASSERT_TRUE(snap.ok());
  // Many logical point reads, a handful of physical round trips.
  EXPECT_GT(cold.kv_requests, 2u * cluster.num_nodes());
  EXPECT_LT(cold.kv_batches, cold.kv_requests / 2);
  EXPECT_TRUE(*snap == workload::ReplayToGraph(events, t));

  // Repeating the snapshot is served from the decoded tier: no round
  // trips, and not a single value re-deserialized — point reads skip the
  // byte cache entirely and return ready-to-apply objects.
  FetchStats warm;
  auto again = qm->GetSnapshot(t, &warm);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(warm.kv_batches, 0u);
  EXPECT_EQ(warm.decodes, 0u);
  EXPECT_GT(warm.decode_hits, 0u);
  EXPECT_TRUE(*again == *snap);
}

// ---------------------------------------------------------------------------
// Zero-copy data plane: warm reads move no value bytes, warm delta-major
// scans cost one decoded probe per prefix, and hub-node version chains are
// served as one merged decoded object.
// ---------------------------------------------------------------------------

TEST(TGITest, WarmReadsPerformZeroValueCopies) {
  // With LZ compression every cold fetch of a compressed block pays the one
  // materialization the codec requires; warm reads are shared views end to
  // end and move nothing.
  ClusterOptions copts = FastCluster();
  copts.compression = CompressionKind::kLz;
  Cluster cluster(copts);
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(81, 6'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  Timestamp t = workload::EndTime(events);

  FetchStats cold;
  auto snap_cold = qm->GetSnapshot(t, &cold);
  ASSERT_TRUE(snap_cold.ok());
  EXPECT_GT(cold.value_copies, 0u);  // LZ blocks materialize once each
  EXPECT_LE(cold.value_copies, cold.micro_deltas);

  FetchStats warm;
  auto snap_warm = qm->GetSnapshot(t, &warm);
  ASSERT_TRUE(snap_warm.ok());
  EXPECT_EQ(warm.value_copies, 0u);
  EXPECT_TRUE(*snap_warm == *snap_cold);

  std::vector<NodeId> ids;
  for (const Event& e : events) {
    if (ids.size() >= 8) break;
    if (e.type == EventType::kAddNode) ids.push_back(e.u);
  }
  FetchStats hist_cold;
  ASSERT_TRUE(qm->GetNodeHistories(ids, 0, t, &hist_cold).ok());
  FetchStats hist_warm;
  ASSERT_TRUE(qm->GetNodeHistories(ids, 0, t, &hist_warm).ok());
  EXPECT_EQ(hist_warm.value_copies, 0u);

  // An uncompressed cluster never copies, cold or warm: every value is a
  // window into storage-node memory.
  Cluster plain(FastCluster());
  TGI plain_tgi(&plain, SmallOptions());
  ASSERT_TRUE(plain_tgi.BuildFrom(events).ok());
  auto plain_qm = plain_tgi.OpenQueryManager(2).value();
  FetchStats plain_cold;
  ASSERT_TRUE(plain_qm->GetSnapshot(t, &plain_cold).ok());
  EXPECT_EQ(plain_cold.value_copies, 0u);
}

TEST(TGITest, ColumnarRowsAreZeroCopyColdAndWarm) {
  // kColumnar compresses the row families without giving up the zero-copy
  // read path: a columnar block decompresses to a window into the stored
  // buffer and decodes by slicing column views, so even COLD reads move no
  // value bytes — the property LZ cannot offer (cf. the test above).
  TGIOptions topts = SmallOptions();
  topts.row_compression = CompressionKind::kColumnar;
  topts.eventlist_compression = CompressionKind::kColumnar;
  topts.versions_compression = CompressionKind::kColumnar;
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, topts);
  auto events = SmallHistory(84, 6'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  Timestamp t = workload::EndTime(events);

  FetchStats cold;
  auto snap_cold = qm->GetSnapshot(t, &cold);
  ASSERT_TRUE(snap_cold.ok());
  EXPECT_EQ(cold.value_copies, 0u);
  EXPECT_TRUE(*snap_cold == workload::ReplayToGraph(events, t));

  FetchStats warm;
  auto snap_warm = qm->GetSnapshot(t, &warm);
  ASSERT_TRUE(snap_warm.ok());
  EXPECT_EQ(warm.value_copies, 0u);
  EXPECT_TRUE(*snap_warm == *snap_cold);

  // Node histories exercise the eventlist and version-chain codecs.
  std::vector<NodeId> ids;
  for (const Event& e : events) {
    if (ids.size() >= 8) break;
    if (e.type == EventType::kAddNode) ids.push_back(e.u);
  }
  FetchStats hist_cold;
  auto hist = qm->GetNodeHistories(ids, 0, t, &hist_cold);
  ASSERT_TRUE(hist.ok());
  EXPECT_EQ(hist_cold.value_copies, 0u);
  FetchStats hist_warm;
  ASSERT_TRUE(qm->GetNodeHistories(ids, 0, t, &hist_warm).ok());
  EXPECT_EQ(hist_warm.value_copies, 0u);

  // And the columnar index is byte-smaller than its uncompressed twin.
  Cluster plain(FastCluster());
  TGI plain_tgi(&plain, SmallOptions());
  ASSERT_TRUE(plain_tgi.BuildFrom(events).ok());
  EXPECT_LT(cluster.TotalStoredBytes(), plain.TotalStoredBytes());
}

TEST(TGITest, WarmDeltaMajorScanCostsOneDecodedProbePerPrefix) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());  // delta-major clustering by default
  auto events = SmallHistory(82, 6'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(1).value();
  Timestamp t = workload::EndTime(events);

  FetchStats cold;
  ASSERT_TRUE(qm->GetSnapshotDelta(t, &cold).ok());

  LruCacheCounters decoded_before = qm->DecodedCacheCounters();
  LruCacheCounters bytes_before = qm->ReadCacheCounters();
  FetchStats warm;
  ASSERT_TRUE(qm->GetSnapshotDelta(t, &warm).ok());
  LruCacheCounters decoded_after = qm->DecodedCacheCounters();
  LruCacheCounters bytes_after = qm->ReadCacheCounters();

  // Exactly one decoded-tier probe per (delta, partition) scan prefix —
  // warm.kv_requests counts those scans — and nothing else: no per-row
  // probes, no byte-cache traffic, no decodes, no copies.
  EXPECT_GT(warm.kv_requests, 0u);
  EXPECT_EQ(decoded_after.hits - decoded_before.hits, warm.kv_requests);
  EXPECT_EQ(decoded_after.misses, decoded_before.misses);
  EXPECT_EQ(bytes_after.hits, bytes_before.hits);
  EXPECT_EQ(bytes_after.misses, bytes_before.misses);
  EXPECT_EQ(warm.kv_batches, 0u);
  EXPECT_EQ(warm.decodes, 0u);
  EXPECT_EQ(warm.value_copies, 0u);
  // Logical accounting identical to the cold run.
  EXPECT_EQ(warm.kv_requests, cold.kv_requests);
  EXPECT_EQ(warm.micro_deltas, cold.micro_deltas);
  EXPECT_EQ(warm.bytes, cold.bytes);
}

TEST(TGITest, HubNodeVersionChainServedAsOneMergedObject) {
  // 6000 events over 2000-event timespans give a busy node several
  // VersionChainSegments; warm retrievals serve them as one merged decoded
  // chain — no versions-table scan, no per-segment decode — and the chain
  // is shared across different time windows.
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = SmallHistory(83, 6'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  std::unordered_map<NodeId, int> touches;
  for (const Event& e : events) {
    ++touches[e.u];
    if (e.IsEdgeEvent()) ++touches[e.v];
  }
  NodeId busy = events.front().u;
  int best = 0;
  for (auto [id, cnt] : touches) {
    if (cnt > best) {
      best = cnt;
      busy = id;
    }
  }
  Timestamp end = workload::EndTime(events);

  FetchStats cold;
  auto h_cold = qm->GetNodeHistory(busy, 0, end, &cold);
  ASSERT_TRUE(h_cold.ok());
  EXPECT_GT(cold.version_scans, 0u);

  FetchStats warm;
  auto h_warm = qm->GetNodeHistory(busy, 0, end, &warm);
  ASSERT_TRUE(h_warm.ok());
  EXPECT_EQ(warm.version_scans, 0u);  // merged chain replaced the scan
  EXPECT_EQ(warm.decodes, 0u);
  EXPECT_EQ(warm.value_copies, 0u);
  EXPECT_TRUE(h_warm->initial == h_cold->initial);
  EXPECT_TRUE(h_warm->events == h_cold->events);

  // The chain is cached unfiltered: a narrower window reuses it (still no
  // scan) and agrees with the event log.
  Timestamp mid = end / 2;
  FetchStats windowed;
  auto h_mid = qm->GetNodeHistory(busy, 0, mid, &windowed);
  ASSERT_TRUE(h_mid.ok());
  EXPECT_EQ(windowed.version_scans, 0u);
  size_t expected = 0;
  for (const Event& e : events) {
    if (e.time > 0 && e.time <= mid && e.Touches(busy)) ++expected;
  }
  EXPECT_EQ(h_mid->events.size(), expected);
}

TEST(TGITest, ReplicationReducesOneHopFetches) {
  auto events = workload::GenerateFriendster(
      {.num_nodes = 1'500, .num_edges = 6'000, .community_size = 100});

  auto run = [&](bool replicate) {
    auto cluster = std::make_unique<Cluster>(FastCluster());
    TGIOptions opts = SmallOptions();
    opts.partition_strategy = PartitionStrategy::kLocality;
    opts.replicate_one_hop = replicate;
    TGI tgi(cluster.get(), opts);
    EXPECT_TRUE(tgi.BuildFrom(events).ok());
    auto qm = tgi.OpenQueryManager().value();
    Timestamp t = workload::EndTime(events);
    Graph final_state = workload::ReplayToGraph(events, t);
    Rng rng(9);
    auto ids = final_state.NodeIds();
    FetchStats stats;
    for (int i = 0; i < 30; ++i) {
      NodeId id = ids[rng.Uniform(ids.size())];
      EXPECT_TRUE(qm->GetKHopNeighborhood(id, t, 1, &stats).ok());
    }
    return stats.kv_requests;
  };

  uint64_t with_replication = run(true);
  uint64_t without_replication = run(false);
  EXPECT_LT(with_replication, without_replication);
}

}  // namespace
}  // namespace hgs
