// Tests for the dataset generators: well-formedness invariants every stream
// must satisfy (strictly increasing timestamps, valid removals), dataset
// shape properties (degree skew, community structure), and determinism.

#include <gtest/gtest.h>

#include <unordered_set>

#include "graph/algorithms.h"
#include "workload/generators.h"

namespace hgs::workload {
namespace {

// A stream is well formed iff: times strictly increase, edges are added only
// between live nodes and when absent, removals target live entities, and
// RemoveNode is never applied while incident edges are live.
void AssertWellFormed(const std::vector<Event>& events) {
  Timestamp last = kMinTimestamp;
  Graph g;
  for (const Event& e : events) {
    ASSERT_GT(e.time, last) << "timestamps must strictly increase";
    last = e.time;
    switch (e.type) {
      case EventType::kAddNode:
        ASSERT_FALSE(g.HasNode(e.u)) << "AddNode of live node " << e.u;
        break;
      case EventType::kRemoveNode:
        ASSERT_TRUE(g.HasNode(e.u));
        ASSERT_TRUE(g.Neighbors(e.u).empty())
            << "RemoveNode with live incident edges";
        break;
      case EventType::kAddEdge:
        ASSERT_TRUE(g.HasNode(e.u) && g.HasNode(e.v));
        ASSERT_FALSE(g.HasEdge(e.u, e.v));
        break;
      case EventType::kRemoveEdge:
        ASSERT_TRUE(g.HasEdge(e.u, e.v));
        break;
      case EventType::kSetNodeAttr:
      case EventType::kDelNodeAttr:
        ASSERT_TRUE(g.HasNode(e.u));
        break;
      case EventType::kSetEdgeAttr:
      case EventType::kDelEdgeAttr:
        ASSERT_TRUE(g.HasEdge(e.u, e.v));
        break;
    }
    ApplyEventToGraph(e, &g);
  }
}

TEST(WikiGrowthTest, WellFormedAndSized) {
  auto events = GenerateWikiGrowth({.num_events = 5'000, .seed = 1});
  EXPECT_EQ(events.size(), 5'000u);
  AssertWellFormed(events);
}

TEST(WikiGrowthTest, DeterministicForSeed) {
  auto a = GenerateWikiGrowth({.num_events = 2'000, .seed = 9});
  auto b = GenerateWikiGrowth({.num_events = 2'000, .seed = 9});
  EXPECT_EQ(a, b);
  auto c = GenerateWikiGrowth({.num_events = 2'000, .seed = 10});
  EXPECT_NE(a, c);
}

TEST(WikiGrowthTest, DegreeSkewIsHeavy) {
  auto events = GenerateWikiGrowth({.num_events = 20'000, .seed = 2});
  Graph g = ReplayToGraph(events, kMaxTimestamp);
  auto hist = algo::DegreeDistribution(g);
  // Preferential attachment: the max degree dwarfs the average.
  size_t max_degree = hist.rbegin()->first;
  EXPECT_GT(static_cast<double>(max_degree), 8 * algo::AverageDegree(g));
}

TEST(ChurnTest, WellFormedAfterAugmentation) {
  auto base = GenerateWikiGrowth({.num_events = 3'000, .seed = 3});
  auto augmented =
      AugmentWithChurn(std::move(base), {.num_events = 3'000, .seed = 4});
  EXPECT_EQ(augmented.size(), 6'000u);
  AssertWellFormed(augmented);
}

TEST(ChurnTest, ContainsDeletions) {
  auto base = GenerateWikiGrowth({.num_events = 2'000, .seed = 5});
  auto augmented =
      AugmentWithChurn(std::move(base), {.num_events = 2'000, .seed = 6});
  size_t deletions = 0;
  for (const Event& e : augmented) {
    if (e.type == EventType::kRemoveEdge) ++deletions;
  }
  EXPECT_GT(deletions, 200u);
}

TEST(FriendsterTest, WellFormedWithCommunities) {
  auto events = GenerateFriendster(
      {.num_nodes = 2'000, .num_edges = 6'000, .community_size = 100});
  AssertWellFormed(events);
  Graph g = ReplayToGraph(events, kMaxTimestamp);
  EXPECT_EQ(g.NumNodes(), 2'000u);
  EXPECT_EQ(g.NumEdges(), 6'000u);
  // Every node carries a community attribute.
  g.ForEachNode([&](NodeId, const NodeRecord& rec) {
    EXPECT_TRUE(rec.attrs.Has("community"));
  });
  // Intra-community edges dominate.
  size_t intra = 0, total = 0;
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
    auto cu = g.GetNode(key.u)->attrs.Get("community");
    auto cv = g.GetNode(key.v)->attrs.Get("community");
    if (*cu == *cv) ++intra;
    ++total;
  });
  EXPECT_GT(intra, total * 6 / 10);
}

TEST(DblpTest, WellFormedBipartiteWithLabels) {
  auto events = GenerateDblp({.num_authors = 200,
                              .num_papers = 600,
                              .authors_per_paper = 3,
                              .num_attr_events = 2'000});
  AssertWellFormed(events);
  Graph g = ReplayToGraph(events, kMaxTimestamp);
  EXPECT_EQ(g.NumNodes(), 800u);
  size_t authors = algo::CountLabel(g, "EntityType", "Author");
  size_t papers = algo::CountLabel(g, "EntityType", "Paper");
  EXPECT_EQ(authors + papers, 800u);
  EXPECT_GT(authors, 0u);
  EXPECT_GT(papers, 0u);
}

TEST(DblpTest, AttrEventsCarryPreviousValue) {
  auto events = GenerateDblp({.num_authors = 50,
                              .num_papers = 100,
                              .authors_per_paper = 2,
                              .num_attr_events = 500});
  Graph g;
  for (const Event& e : events) {
    if (e.type == EventType::kSetNodeAttr) {
      auto cur = g.GetNode(e.u)->attrs.Get(e.key);
      ASSERT_TRUE(cur.has_value());
      EXPECT_EQ(*cur, e.prev_value) << "prev_value must match actual state";
    }
    ApplyEventToGraph(e, &g);
  }
}

TEST(ReplayTest, UptoIsInclusive) {
  std::vector<Event> events = {Event::AddNode(10, 1), Event::AddNode(20, 2)};
  EXPECT_EQ(ReplayToGraph(events, 10).NumNodes(), 1u);
  EXPECT_EQ(ReplayToGraph(events, 9).NumNodes(), 0u);
  EXPECT_EQ(ReplayToGraph(events, 20).NumNodes(), 2u);
}

}  // namespace
}  // namespace hgs::workload
