// Tests for the simulated distributed KV store: placement, replication,
// failover, scans, compression transparency and stats accounting.

#include <gtest/gtest.h>

#include <chrono>

#include "kvstore/cluster.h"

namespace hgs {
namespace {

ClusterOptions FastOptions(size_t nodes = 2, size_t replication = 1) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.replication = replication;
  opts.latency.enabled = false;  // unit tests don't want simulated sleeps
  return opts;
}

TEST(ClusterTest, PutGetRoundTrip) {
  Cluster c(FastOptions());
  ASSERT_TRUE(c.Put("t", 1, "key", "value").ok());
  auto got = c.Get("t", 1, "key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "value");
}

TEST(ClusterTest, MissingKeyIsNotFound) {
  Cluster c(FastOptions());
  auto got = c.Get("t", 1, "nope");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST(ClusterTest, TablesAreNamespaces) {
  Cluster c(FastOptions());
  ASSERT_TRUE(c.Put("a", 1, "k", "va").ok());
  ASSERT_TRUE(c.Put("b", 1, "k", "vb").ok());
  EXPECT_EQ(*c.Get("a", 1, "k"), "va");
  EXPECT_EQ(*c.Get("b", 1, "k"), "vb");
}

TEST(ClusterTest, ScanReturnsPrefixInOrder) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 7, "ab", "2").ok());
  ASSERT_TRUE(c.Put("t", 7, "aa", "1").ok());
  ASSERT_TRUE(c.Put("t", 7, "ac", "3").ok());
  ASSERT_TRUE(c.Put("t", 7, "b", "x").ok());
  auto res = c.Scan("t", 7, "a");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  EXPECT_EQ((*res)[0].key, "aa");
  EXPECT_EQ((*res)[1].key, "ab");
  EXPECT_EQ((*res)[2].key, "ac");
  EXPECT_EQ((*res)[2].value, "3");
}

TEST(ClusterTest, ScanEmptyPrefixReturnsWholePartition) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 3, "x", "1").ok());
  ASSERT_TRUE(c.Put("t", 3, "y", "2").ok());
  ASSERT_TRUE(c.Put("t", 4, "z", "3").ok());  // different partition token
  auto res = c.Scan("t", 3, "");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 2u);
}

TEST(ClusterTest, DeleteRemovesFromAllReplicas) {
  Cluster c(FastOptions(3, 3));
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  EXPECT_TRUE(c.Delete("t", 1, "k"));
  EXPECT_TRUE(c.Get("t", 1, "k").status().IsNotFound());
  EXPECT_FALSE(c.Delete("t", 1, "k"));
}

TEST(ClusterTest, ReplicationSurvivesNodeFailure) {
  Cluster c(FastOptions(3, 2));
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(c.Put("t", p, "k" + std::to_string(p), "v").ok());
  }
  c.SetNodeDown(0, true);
  for (uint64_t p = 0; p < 30; ++p) {
    auto got = c.Get("t", p, "k" + std::to_string(p));
    ASSERT_TRUE(got.ok()) << "partition " << p << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, "v");
  }
}

TEST(ClusterTest, NoReplicationFailsWhenOwnerDown) {
  Cluster c(FastOptions(2, 1));
  // Find a partition owned by node 0.
  bool found_failure = false;
  for (uint64_t p = 0; p < 16 && !found_failure; ++p) {
    std::string key = "k" + std::to_string(p);
    ASSERT_TRUE(c.Put("t", p, key, "v").ok());
    c.SetNodeDown(0, true);
    auto got = c.Get("t", p, key);
    if (!got.ok() && got.status().IsIOError()) found_failure = true;
    c.SetNodeDown(0, false);
  }
  EXPECT_TRUE(found_failure);
}

TEST(ClusterTest, ReplicationClampedToNodeCount) {
  Cluster c(FastOptions(2, 5));
  EXPECT_EQ(c.replication(), 2u);
}

TEST(ClusterTest, CompressionIsTransparent) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.Put("t", 1, "k", value).ok());
  auto got = c.Get("t", 1, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
  // Stored bytes should reflect compression.
  EXPECT_LT(c.TotalStoredBytes(), value.size());
  auto scanned = c.Scan("t", 1, "");
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ((*scanned)[0].value, value);
}

TEST(ClusterTest, StatsAccounting) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "k", "0123456789").ok());
  c.ResetStats();
  ASSERT_TRUE(c.Get("t", 1, "k").ok());
  ASSERT_TRUE(c.Scan("t", 1, "").ok());
  EXPECT_EQ(c.TotalReadRequests(), 2u);
  EXPECT_GT(c.TotalBytesRead(), 0u);
  EXPECT_GT(c.TotalKeys(), 0u);
}

TEST(ClusterTest, OverwriteUpdatesStoredBytes) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "k", std::string(100, 'a')).ok());
  uint64_t before = c.TotalStoredBytes();
  ASSERT_TRUE(c.Put("t", 1, "k", std::string(10, 'b')).ok());
  EXPECT_LT(c.TotalStoredBytes(), before);
  EXPECT_EQ(c.TotalKeys(), 1u);
}

TEST(MultiGetTest, MatchesLoopedGetOnMultiNodeCluster) {
  Cluster c(FastOptions(3, 1));
  std::vector<MultiGetKey> keys;
  for (uint64_t p = 0; p < 8; ++p) {
    for (int k = 0; k < 5; ++k) {
      std::string key = "k" + std::to_string(p) + "-" + std::to_string(k);
      ASSERT_TRUE(
          c.Put("t", p, key, "v" + std::to_string(p * 10 + k)).ok());
      keys.push_back(MultiGetKey{p, key});
    }
    // Interleave keys that were never written.
    keys.push_back(MultiGetKey{p, "missing" + std::to_string(p)});
  }
  size_t batches = 0;
  auto multi = c.MultiGet("t", keys, &batches);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi->size(), keys.size());
  // Grouping by node: no more round trips than nodes, far fewer than keys.
  EXPECT_LE(batches, c.num_nodes());
  EXPECT_LT(batches, keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto single = c.Get("t", keys[i].partition, keys[i].key);
    if (single.ok()) {
      ASSERT_TRUE((*multi)[i].has_value()) << keys[i].key;
      EXPECT_EQ(*(*multi)[i], *single);
    } else {
      EXPECT_TRUE(single.status().IsNotFound());
      EXPECT_FALSE((*multi)[i].has_value()) << keys[i].key;
    }
  }
}

TEST(MultiGetTest, EmptyKeyListIsANoOp) {
  Cluster c(FastOptions());
  size_t batches = 99;
  auto multi = c.MultiGet("t", {}, &batches);
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(multi->empty());
  EXPECT_EQ(batches, 0u);
  EXPECT_EQ(c.TotalReadRequests(), 0u);
}

TEST(MultiGetTest, SurvivesNodeFailureWithReplication) {
  Cluster c(FastOptions(3, 2));
  std::vector<MultiGetKey> keys;
  for (uint64_t p = 0; p < 30; ++p) {
    std::string key = "k" + std::to_string(p);
    ASSERT_TRUE(c.Put("t", p, key, "v" + std::to_string(p)).ok());
    keys.push_back(MultiGetKey{p, key});
  }
  c.SetNodeDown(0, true);
  auto multi = c.MultiGet("t", keys);
  ASSERT_TRUE(multi.ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE((*multi)[i].has_value()) << "partition " << i;
    EXPECT_EQ(*(*multi)[i], "v" + std::to_string(i));
  }
}

TEST(MultiGetTest, CompressionIsTransparent) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.Put("t", 1, "k", value).ok());
  auto multi = c.MultiGet("t", {MultiGetKey{1, "k"}});
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE((*multi)[0].has_value());
  EXPECT_EQ(*(*multi)[0], value);
}

TEST(MultiGetTest, OneBatchCountsAsOneRequestAndOneSeek) {
  ClusterOptions opts;
  opts.num_nodes = 1;
  opts.latency.enabled = true;
  opts.latency.seek_micros = 3'000;
  opts.latency.per_key_micros = 0;
  Cluster c(opts);
  std::vector<MultiGetKey> keys;
  for (int i = 0; i < 8; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(c.Put("t", 1, key, "v").ok());
    keys.push_back(MultiGetKey{1, key});
  }
  c.ResetStats();
  ASSERT_TRUE(c.MultiGet("t", keys).ok());
  // 8 looped gets would register 8 requests (and pay 8 seeks); the batch
  // registers one. The node-side stats are deterministic, unlike wall time.
  EXPECT_EQ(c.TotalReadRequests(), 1u);
}

TEST(MultiPutTest, MatchesLoopedPutContentsAndCounters) {
  Cluster looped(FastOptions(3, 1));
  Cluster grouped(FastOptions(3, 1));
  std::vector<PutRow> rows;
  for (uint64_t p = 0; p < 8; ++p) {
    for (int k = 0; k < 5; ++k) {
      std::string key = "k" + std::to_string(p) + "-" + std::to_string(k);
      std::string value = "v" + std::to_string(p * 10 + k);
      ASSERT_TRUE(looped.Put("t", p, key, value).ok());
      rows.push_back(PutRow{p, key, value});
    }
  }
  size_t batches = 0;
  ASSERT_TRUE(grouped.MultiPut("t", std::move(rows), &batches).ok());
  // Group commit: no more batches than nodes, far fewer than rows.
  EXPECT_GT(batches, 0u);
  EXPECT_LE(batches, grouped.num_nodes());
  EXPECT_EQ(grouped.TotalPutBatches(), batches);
  EXPECT_EQ(grouped.TotalRowsPut(), 40u);
  // Identical stored state either way.
  EXPECT_EQ(grouped.ContentFingerprint(), looped.ContentFingerprint());
  EXPECT_EQ(grouped.TotalKeys(), looped.TotalKeys());
  auto got = grouped.Get("t", 3, "k3-2");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v32");
}

TEST(MultiPutTest, ReplicatedRowsSurviveNodeFailure) {
  Cluster c(FastOptions(3, 2));
  std::vector<PutRow> rows;
  for (uint64_t p = 0; p < 30; ++p) {
    rows.push_back(PutRow{p, "k" + std::to_string(p), "v" + std::to_string(p)});
  }
  ASSERT_TRUE(c.MultiPut("t", std::move(rows)).ok());
  EXPECT_EQ(c.TotalRowsPut(), 60u);  // one stored row per replica
  c.SetNodeDown(0, true);
  for (uint64_t p = 0; p < 30; ++p) {
    auto got = c.Get("t", p, "k" + std::to_string(p));
    ASSERT_TRUE(got.ok()) << "partition " << p;
    EXPECT_EQ(*got, "v" + std::to_string(p));
  }
}

TEST(MultiPutTest, CompressionIsTransparent) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.MultiPut("t", {PutRow{1, "k", value}}).ok());
  auto got = c.Get("t", 1, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
}

TEST(SharedValueTest, ViewsSurviveOverwriteAndDelete) {
  // The refcounted owner keeps a fetched buffer alive across overwrites and
  // deletes of its key: views never dangle, they just go stale.
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "k", "original-payload-well-past-sso-length").ok());
  auto v = c.Get("t", 1, "k");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(c.Put("t", 1, "k", "replacement").ok());
  EXPECT_TRUE(c.Delete("t", 1, "k"));
  EXPECT_EQ(*v, "original-payload-well-past-sso-length");
  EXPECT_TRUE(c.Get("t", 1, "k").status().IsNotFound());
}

TEST(SharedValueTest, UncompressedReadsAreZeroCopy) {
  // Without compression every read is a window into node memory: the value
  // shares the stored buffer and the copy counters stay at zero.
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "a", "payload-a").ok());
  ASSERT_TRUE(c.Put("t", 1, "b", "payload-b").ok());
  size_t copies = 99;
  auto got = c.Get("t", 1, "a", &copies);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(copies, 0u);
  EXPECT_NE(got->owner(), nullptr);  // backed by the node's shared buffer

  copies = 99;
  size_t batches = 0;
  auto multi = c.MultiGet("t", {MultiGetKey{1, "a"}, MultiGetKey{1, "b"}},
                          &batches, &copies);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(copies, 0u);

  copies = 99;
  auto scanned = c.Scan("t", 1, "", &copies);
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), 2u);
  EXPECT_EQ(copies, 0u);
}

TEST(SharedValueTest, LzReadsMaterializeOncePerCompressedValue) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.Put("t", 1, "a", value).ok());
  ASSERT_TRUE(c.Put("t", 1, "b", value).ok());
  size_t copies = 0;
  auto scanned = c.Scan("t", 1, "", &copies);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(copies, 2u);  // one materialization per compressed block
  EXPECT_EQ((*scanned)[0].value, value);
}

TEST(LatencyModelTest, CostScalesWithKeysAndBytes) {
  LatencyModel m;
  m.seek_micros = 100;
  m.per_key_micros = 10;
  m.bytes_per_micro = 100.0;
  EXPECT_EQ(m.CostMicros(0, 0), 100);
  EXPECT_EQ(m.CostMicros(5, 0), 150);
  EXPECT_EQ(m.CostMicros(0, 10'000), 200);
  m.enabled = false;
  EXPECT_EQ(m.CostMicros(5, 10'000), 0);
}

TEST(LatencySimulationTest, SleepsApproximatelyTheModelledCost) {
  ClusterOptions opts;
  opts.num_nodes = 1;
  opts.latency.enabled = true;
  opts.latency.seek_micros = 2'000;  // 2ms, measurable
  opts.latency.per_key_micros = 0;
  Cluster c(opts);
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(c.Get("t", 1, "k").ok());
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_GE(ms, 1.5);
}

TEST(LatencySimulationTest, ParallelRequestsOverlapOnServerThreads) {
  ClusterOptions opts;
  opts.num_nodes = 1;
  opts.server_threads_per_node = 4;
  opts.latency.enabled = true;
  opts.latency.seek_micros = 5'000;
  Cluster c(opts);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(c.Put("t", 1, "k" + std::to_string(i), "v").ok());
  }
  // 4 sequential gets ~ 20ms; 4 parallel gets on 4 server threads ~ 5ms.
  auto start = std::chrono::steady_clock::now();
  ParallelFor(4, 4, [&](size_t i) {
    ASSERT_TRUE(c.Get("t", 1, "k" + std::to_string(i)).ok());
  });
  double parallel_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(parallel_ms, 16.0);
}

}  // namespace
}  // namespace hgs
