// Tests for the simulated distributed KV store: placement, replication,
// failover, scans, compression transparency and stats accounting.

#include <gtest/gtest.h>

#include <chrono>

#include "kvstore/cluster.h"

namespace hgs {
namespace {

ClusterOptions FastOptions(size_t nodes = 2, size_t replication = 1) {
  ClusterOptions opts;
  opts.num_nodes = nodes;
  opts.replication = replication;
  opts.latency.enabled = false;  // unit tests don't want simulated sleeps
  return opts;
}

TEST(ClusterTest, PutGetRoundTrip) {
  Cluster c(FastOptions());
  ASSERT_TRUE(c.Put("t", 1, "key", "value").ok());
  auto got = c.Get("t", 1, "key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "value");
}

TEST(ClusterTest, MissingKeyIsNotFound) {
  Cluster c(FastOptions());
  auto got = c.Get("t", 1, "nope");
  ASSERT_FALSE(got.ok());
  EXPECT_TRUE(got.status().IsNotFound());
}

TEST(ClusterTest, TablesAreNamespaces) {
  Cluster c(FastOptions());
  ASSERT_TRUE(c.Put("a", 1, "k", "va").ok());
  ASSERT_TRUE(c.Put("b", 1, "k", "vb").ok());
  EXPECT_EQ(*c.Get("a", 1, "k"), "va");
  EXPECT_EQ(*c.Get("b", 1, "k"), "vb");
}

TEST(ClusterTest, ScanReturnsPrefixInOrder) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 7, "ab", "2").ok());
  ASSERT_TRUE(c.Put("t", 7, "aa", "1").ok());
  ASSERT_TRUE(c.Put("t", 7, "ac", "3").ok());
  ASSERT_TRUE(c.Put("t", 7, "b", "x").ok());
  auto res = c.Scan("t", 7, "a");
  ASSERT_TRUE(res.ok());
  ASSERT_EQ(res->size(), 3u);
  EXPECT_EQ((*res)[0].key, "aa");
  EXPECT_EQ((*res)[1].key, "ab");
  EXPECT_EQ((*res)[2].key, "ac");
  EXPECT_EQ((*res)[2].value, "3");
}

TEST(ClusterTest, ScanEmptyPrefixReturnsWholePartition) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 3, "x", "1").ok());
  ASSERT_TRUE(c.Put("t", 3, "y", "2").ok());
  ASSERT_TRUE(c.Put("t", 4, "z", "3").ok());  // different partition token
  auto res = c.Scan("t", 3, "");
  ASSERT_TRUE(res.ok());
  EXPECT_EQ(res->size(), 2u);
}

TEST(ClusterTest, DeleteRemovesFromAllReplicas) {
  Cluster c(FastOptions(3, 3));
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  auto del = c.Delete("t", 1, "k");
  ASSERT_TRUE(del.ok());
  EXPECT_TRUE(*del);
  EXPECT_TRUE(c.Get("t", 1, "k").status().IsNotFound());
  auto again = c.Delete("t", 1, "k");
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(*again);
}

TEST(ClusterTest, ReplicationSurvivesNodeFailure) {
  Cluster c(FastOptions(3, 2));
  for (uint64_t p = 0; p < 30; ++p) {
    ASSERT_TRUE(c.Put("t", p, "k" + std::to_string(p), "v").ok());
  }
  c.SetNodeDown(0, true);
  for (uint64_t p = 0; p < 30; ++p) {
    auto got = c.Get("t", p, "k" + std::to_string(p));
    ASSERT_TRUE(got.ok()) << "partition " << p << ": "
                          << got.status().ToString();
    EXPECT_EQ(*got, "v");
  }
}

TEST(ClusterTest, NoReplicationFailsWhenOwnerDown) {
  Cluster c(FastOptions(2, 1));
  // Find a partition owned by node 0.
  bool found_failure = false;
  for (uint64_t p = 0; p < 16 && !found_failure; ++p) {
    std::string key = "k" + std::to_string(p);
    ASSERT_TRUE(c.Put("t", p, key, "v").ok());
    c.SetNodeDown(0, true);
    auto got = c.Get("t", p, key);
    if (!got.ok() && got.status().IsIOError()) found_failure = true;
    c.SetNodeDown(0, false);
  }
  EXPECT_TRUE(found_failure);
}

TEST(ClusterTest, ReplicationClampedToNodeCount) {
  Cluster c(FastOptions(2, 5));
  EXPECT_EQ(c.replication(), 2u);
}

TEST(ClusterTest, CompressionIsTransparent) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.Put("t", 1, "k", value).ok());
  auto got = c.Get("t", 1, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
  // Stored bytes should reflect compression.
  EXPECT_LT(c.TotalStoredBytes(), value.size());
  auto scanned = c.Scan("t", 1, "");
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ((*scanned)[0].value, value);
}

TEST(ClusterTest, StatsAccounting) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "k", "0123456789").ok());
  c.ResetStats();
  ASSERT_TRUE(c.Get("t", 1, "k").ok());
  ASSERT_TRUE(c.Scan("t", 1, "").ok());
  EXPECT_EQ(c.TotalReadRequests(), 2u);
  EXPECT_GT(c.TotalBytesRead(), 0u);
  EXPECT_GT(c.TotalKeys(), 0u);
}

TEST(ClusterTest, OverwriteUpdatesStoredBytes) {
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "k", std::string(100, 'a')).ok());
  uint64_t before = c.TotalStoredBytes();
  ASSERT_TRUE(c.Put("t", 1, "k", std::string(10, 'b')).ok());
  EXPECT_LT(c.TotalStoredBytes(), before);
  EXPECT_EQ(c.TotalKeys(), 1u);
}

TEST(MultiGetTest, MatchesLoopedGetOnMultiNodeCluster) {
  Cluster c(FastOptions(3, 1));
  std::vector<MultiGetKey> keys;
  for (uint64_t p = 0; p < 8; ++p) {
    for (int k = 0; k < 5; ++k) {
      std::string key = "k" + std::to_string(p) + "-" + std::to_string(k);
      ASSERT_TRUE(
          c.Put("t", p, key, "v" + std::to_string(p * 10 + k)).ok());
      keys.push_back(MultiGetKey{p, key});
    }
    // Interleave keys that were never written.
    keys.push_back(MultiGetKey{p, "missing" + std::to_string(p)});
  }
  size_t batches = 0;
  auto multi = c.MultiGet("t", keys, &batches);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi->size(), keys.size());
  // Grouping by node: no more round trips than nodes, far fewer than keys.
  EXPECT_LE(batches, c.num_nodes());
  EXPECT_LT(batches, keys.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    auto single = c.Get("t", keys[i].partition, keys[i].key);
    if (single.ok()) {
      ASSERT_TRUE((*multi)[i].has_value()) << keys[i].key;
      EXPECT_EQ(*(*multi)[i], *single);
    } else {
      EXPECT_TRUE(single.status().IsNotFound());
      EXPECT_FALSE((*multi)[i].has_value()) << keys[i].key;
    }
  }
}

TEST(MultiGetTest, EmptyKeyListIsANoOp) {
  Cluster c(FastOptions());
  size_t batches = 99;
  auto multi = c.MultiGet("t", {}, &batches);
  ASSERT_TRUE(multi.ok());
  EXPECT_TRUE(multi->empty());
  EXPECT_EQ(batches, 0u);
  EXPECT_EQ(c.TotalReadRequests(), 0u);
}

TEST(MultiGetTest, SurvivesNodeFailureWithReplication) {
  Cluster c(FastOptions(3, 2));
  std::vector<MultiGetKey> keys;
  for (uint64_t p = 0; p < 30; ++p) {
    std::string key = "k" + std::to_string(p);
    ASSERT_TRUE(c.Put("t", p, key, "v" + std::to_string(p)).ok());
    keys.push_back(MultiGetKey{p, key});
  }
  c.SetNodeDown(0, true);
  auto multi = c.MultiGet("t", keys);
  ASSERT_TRUE(multi.ok());
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE((*multi)[i].has_value()) << "partition " << i;
    EXPECT_EQ(*(*multi)[i], "v" + std::to_string(i));
  }
}

TEST(MultiGetTest, CompressionIsTransparent) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.Put("t", 1, "k", value).ok());
  auto multi = c.MultiGet("t", {MultiGetKey{1, "k"}});
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE((*multi)[0].has_value());
  EXPECT_EQ(*(*multi)[0], value);
}

TEST(MultiGetTest, OneBatchCountsAsOneRequestAndOneSeek) {
  ClusterOptions opts;
  opts.num_nodes = 1;
  opts.latency.enabled = true;
  opts.latency.seek_micros = 3'000;
  opts.latency.per_key_micros = 0;
  Cluster c(opts);
  std::vector<MultiGetKey> keys;
  for (int i = 0; i < 8; ++i) {
    std::string key = "k" + std::to_string(i);
    ASSERT_TRUE(c.Put("t", 1, key, "v").ok());
    keys.push_back(MultiGetKey{1, key});
  }
  c.ResetStats();
  ASSERT_TRUE(c.MultiGet("t", keys).ok());
  // 8 looped gets would register 8 requests (and pay 8 seeks); the batch
  // registers one. The node-side stats are deterministic, unlike wall time.
  EXPECT_EQ(c.TotalReadRequests(), 1u);
}

TEST(MultiPutTest, MatchesLoopedPutContentsAndCounters) {
  Cluster looped(FastOptions(3, 1));
  Cluster grouped(FastOptions(3, 1));
  std::vector<PutRow> rows;
  for (uint64_t p = 0; p < 8; ++p) {
    for (int k = 0; k < 5; ++k) {
      std::string key = "k" + std::to_string(p) + "-" + std::to_string(k);
      std::string value = "v" + std::to_string(p * 10 + k);
      ASSERT_TRUE(looped.Put("t", p, key, value).ok());
      rows.push_back(PutRow{p, key, value});
    }
  }
  size_t batches = 0;
  ASSERT_TRUE(grouped.MultiPut("t", std::move(rows), &batches).ok());
  // Group commit: no more batches than nodes, far fewer than rows.
  EXPECT_GT(batches, 0u);
  EXPECT_LE(batches, grouped.num_nodes());
  EXPECT_EQ(grouped.TotalPutBatches(), batches);
  EXPECT_EQ(grouped.TotalRowsPut(), 40u);
  // Identical stored state either way.
  EXPECT_EQ(grouped.ContentFingerprint(), looped.ContentFingerprint());
  EXPECT_EQ(grouped.TotalKeys(), looped.TotalKeys());
  auto got = grouped.Get("t", 3, "k3-2");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, "v32");
}

TEST(MultiPutTest, ReplicatedRowsSurviveNodeFailure) {
  Cluster c(FastOptions(3, 2));
  std::vector<PutRow> rows;
  for (uint64_t p = 0; p < 30; ++p) {
    rows.push_back(PutRow{p, "k" + std::to_string(p), "v" + std::to_string(p)});
  }
  ASSERT_TRUE(c.MultiPut("t", std::move(rows)).ok());
  EXPECT_EQ(c.TotalRowsPut(), 60u);  // one stored row per replica
  c.SetNodeDown(0, true);
  for (uint64_t p = 0; p < 30; ++p) {
    auto got = c.Get("t", p, "k" + std::to_string(p));
    ASSERT_TRUE(got.ok()) << "partition " << p;
    EXPECT_EQ(*got, "v" + std::to_string(p));
  }
}

TEST(MultiPutTest, CompressionIsTransparent) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.MultiPut("t", {PutRow{1, "k", value}}).ok());
  auto got = c.Get("t", 1, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, value);
}

TEST(SharedValueTest, ViewsSurviveOverwriteAndDelete) {
  // The refcounted owner keeps a fetched buffer alive across overwrites and
  // deletes of its key: views never dangle, they just go stale.
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "k", "original-payload-well-past-sso-length").ok());
  auto v = c.Get("t", 1, "k");
  ASSERT_TRUE(v.ok());
  ASSERT_TRUE(c.Put("t", 1, "k", "replacement").ok());
  EXPECT_TRUE(*c.Delete("t", 1, "k"));
  EXPECT_EQ(*v, "original-payload-well-past-sso-length");
  EXPECT_TRUE(c.Get("t", 1, "k").status().IsNotFound());
}

TEST(SharedValueTest, UncompressedReadsAreZeroCopy) {
  // Without compression every read is a window into node memory: the value
  // shares the stored buffer and the copy counters stay at zero.
  Cluster c(FastOptions(1));
  ASSERT_TRUE(c.Put("t", 1, "a", "payload-a").ok());
  ASSERT_TRUE(c.Put("t", 1, "b", "payload-b").ok());
  size_t copies = 99;
  auto got = c.Get("t", 1, "a", &copies);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(copies, 0u);
  EXPECT_NE(got->owner(), nullptr);  // backed by the node's shared buffer

  copies = 99;
  size_t batches = 0;
  auto multi = c.MultiGet("t", {MultiGetKey{1, "a"}, MultiGetKey{1, "b"}},
                          &batches, &copies);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(copies, 0u);

  copies = 99;
  auto scanned = c.Scan("t", 1, "", &copies);
  ASSERT_TRUE(scanned.ok());
  ASSERT_EQ(scanned->size(), 2u);
  EXPECT_EQ(copies, 0u);
}

TEST(SharedValueTest, LzReadsMaterializeOncePerCompressedValue) {
  ClusterOptions opts = FastOptions(1);
  opts.compression = CompressionKind::kLz;
  Cluster c(opts);
  std::string value;
  for (int i = 0; i < 200; ++i) value += "repetitive-payload-";
  ASSERT_TRUE(c.Put("t", 1, "a", value).ok());
  ASSERT_TRUE(c.Put("t", 1, "b", value).ok());
  size_t copies = 0;
  auto scanned = c.Scan("t", 1, "", &copies);
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(copies, 2u);  // one materialization per compressed block
  EXPECT_EQ((*scanned)[0].value, value);
}

TEST(LatencyModelTest, CostScalesWithKeysAndBytes) {
  LatencyModel m;
  m.seek_micros = 100;
  m.per_key_micros = 10;
  m.bytes_per_micro = 100.0;
  EXPECT_EQ(m.CostMicros(0, 0), 100);
  EXPECT_EQ(m.CostMicros(5, 0), 150);
  EXPECT_EQ(m.CostMicros(0, 10'000), 200);
  m.enabled = false;
  EXPECT_EQ(m.CostMicros(5, 10'000), 0);
}

TEST(LatencySimulationTest, SleepsApproximatelyTheModelledCost) {
  ClusterOptions opts;
  opts.num_nodes = 1;
  opts.latency.enabled = true;
  opts.latency.seek_micros = 2'000;  // 2ms, measurable
  opts.latency.per_key_micros = 0;
  Cluster c(opts);
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  auto start = std::chrono::steady_clock::now();
  ASSERT_TRUE(c.Get("t", 1, "k").ok());
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_GE(ms, 1.5);
}

TEST(ClusterTest, ReplicationClampedToInlineReplicaBound) {
  // Replicas() uses a fixed-capacity inline array, so the replication
  // factor is clamped to kMaxReplicas even on larger clusters.
  Cluster c(FastOptions(12, 12));
  EXPECT_EQ(c.replication(), kMaxReplicas);
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  EXPECT_EQ(*c.Get("t", 1, "k"), "v");
}

// -- Fault tolerance ----------------------------------------------------------

TEST(FaultToleranceTest, StaleNotFoundFallsThroughToNextReplica) {
  // Regression for the stale-NotFound bug: a replica that rejoined with
  // hints pending must not answer NotFound authoritatively. Make BOTH
  // replicas dirty with complementary contents so whichever the rotation
  // queries first is missing one of the keys.
  ClusterOptions opts = FastOptions(2, 2);
  opts.write_ack = WriteAck::kOne;
  Cluster c(opts);
  c.SetNodeDown(0, true);
  ASSERT_TRUE(c.Put("t", 1, "ka", "va").ok());  // only node 1 has ka
  c.SetNodeDown(0, false);
  c.SetNodeDown(1, true);
  ASSERT_TRUE(c.Put("t", 1, "kb", "vb").ok());  // only node 0 has kb
  c.SetNodeDown(1, false);
  ASSERT_TRUE(c.NodeDirty(0));
  ASSERT_TRUE(c.NodeDirty(1));
  // Every read must be served: a dirty replica's NotFound falls through.
  // Consecutive reads of one key make the replica rotation start at the
  // key-less replica on every other read, exercising the fallthrough.
  for (int i = 0; i < 8; ++i) {
    auto a = c.Get("t", 1, "ka");
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    EXPECT_EQ(*a, "va");
  }
  for (int i = 0; i < 8; ++i) {
    auto b = c.Get("t", 1, "kb");
    ASSERT_TRUE(b.ok()) << b.status().ToString();
    EXPECT_EQ(*b, "vb");
  }
  EXPECT_GT(c.resilience().failovers.load(), 0u);
  // A key absent everywhere still reports NotFound (the last resort).
  EXPECT_TRUE(c.Get("t", 1, "never-written").status().IsNotFound());
  // Replaying both hint queues reconciles the replicas.
  ASSERT_TRUE(c.ReplayHints(0).ok());
  ASSERT_TRUE(c.ReplayHints(1).ok());
  EXPECT_FALSE(c.NodeDirty(0));
  EXPECT_FALSE(c.NodeDirty(1));
  EXPECT_EQ(c.NodeContentFingerprint(0), c.NodeContentFingerprint(1));
}

TEST(FaultToleranceTest, WriteFailsLoudlyWhenAckTargetUnmet) {
  Cluster c(FastOptions(2, 2));  // default ack level: all replicas
  c.SetNodeDown(0, true);
  Status st = c.Put("t", 1, "k", "v");
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("hinted"), std::string::npos);
  EXPECT_EQ(c.resilience().failed_writes.load(), 1u);
  EXPECT_EQ(c.PendingHints(0), 1u);
  Status mst = c.MultiPut("t", {PutRow{1, "k2", "v2"}});
  EXPECT_TRUE(mst.IsIOError());
  auto del = c.Delete("t", 1, "k");
  EXPECT_TRUE(del.status().IsIOError());
}

TEST(FaultToleranceTest, AckOneToleratesDownReplicaAsDegradedWrite) {
  ClusterOptions opts = FastOptions(2, 2);
  opts.write_ack = WriteAck::kOne;
  Cluster c(opts);
  c.SetNodeDown(0, true);
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  EXPECT_EQ(c.resilience().degraded_writes.load(), 1u);
  EXPECT_EQ(c.resilience().failed_writes.load(), 0u);
  EXPECT_EQ(*c.Get("t", 1, "k"), "v");  // durable on the live replica
  // Quorum on r=3 tolerates one down replica the same way.
  ClusterOptions q = FastOptions(3, 3);
  q.write_ack = WriteAck::kQuorum;
  Cluster d(q);
  d.SetNodeDown(2, true);
  ASSERT_TRUE(d.Put("t", 1, "k", "v").ok());
  EXPECT_EQ(d.resilience().degraded_writes.load(), 1u);
  d.SetNodeDown(1, true);  // 1 of 3 left: below quorum
  EXPECT_TRUE(d.Put("t", 1, "k2", "v").IsIOError());
}

TEST(FaultToleranceTest, MultiGetDegradesPerKeyWhenKeysAreDead) {
  Cluster c(FastOptions(3, 1));
  std::vector<MultiGetKey> keys;
  for (uint64_t p = 0; p < 30; ++p) {
    std::string key = "k" + std::to_string(p);
    ASSERT_TRUE(c.Put("t", p, key, "v" + std::to_string(p)).ok());
    keys.push_back(MultiGetKey{p, key});
  }
  c.SetNodeDown(0, true);
  // Strict contract (no key_status): the whole call fails because some
  // keys' only replica is down.
  auto strict = c.MultiGet("t", keys);
  EXPECT_FALSE(strict.ok());
  // Graceful contract: dead keys report per-key errors, the rest serve.
  std::vector<Status> key_status;
  auto multi = c.MultiGet("t", keys, nullptr, nullptr, nullptr, &key_status);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(key_status.size(), keys.size());
  size_t dead = 0;
  size_t served = 0;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!key_status[i].ok()) {
      ++dead;
      EXPECT_FALSE((*multi)[i].has_value());
    } else {
      ++served;
      ASSERT_TRUE((*multi)[i].has_value()) << keys[i].key;
      EXPECT_EQ(*(*multi)[i], "v" + std::to_string(i));
    }
  }
  EXPECT_GT(dead, 0u);
  EXPECT_GT(served, 0u);
}

TEST(FaultToleranceTest, TransientFaultsRetryAndFailOver) {
  Cluster c(FastOptions(2, 2));
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  FaultProfile flaky;
  flaky.transient_error_prob = 1.0;  // node 0 fails every request
  c.SetFaultProfile(0, flaky);
  for (int i = 0; i < 8; ++i) {
    auto got = c.Get("t", 1, "k");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, "v");
  }
  EXPECT_GT(c.resilience().retries.load(), 0u);
  EXPECT_GT(c.resilience().failovers.load(), 0u);
  // Batched reads take the same fallback.
  ReadCallStats call;
  auto multi = c.MultiGet("t", {MultiGetKey{1, "k"}}, nullptr, nullptr, &call);
  ASSERT_TRUE(multi.ok());
  ASSERT_TRUE((*multi)[0].has_value());
  EXPECT_EQ(*(*multi)[0], "v");
}

TEST(FaultToleranceTest, WritesThatExhaustRetriesAreHintedThenReplayed) {
  ClusterOptions opts = FastOptions(2, 2);
  opts.write_ack = WriteAck::kOne;
  opts.retry_backoff_micros = 10;  // keep the test fast
  Cluster c(opts);
  FaultProfile flaky;
  flaky.transient_error_prob = 1.0;
  c.SetFaultProfile(0, flaky);
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());  // node 1 acks; node 0 hinted
  EXPECT_GT(c.resilience().retries.load(), 0u);
  EXPECT_EQ(c.PendingHints(0), 1u);
  EXPECT_TRUE(c.NodeDirty(0));
  c.SetFaultProfile(0, FaultProfile{});  // heal the node
  ASSERT_TRUE(c.ReplayHints(0).ok());
  EXPECT_FALSE(c.NodeDirty(0));
  EXPECT_EQ(c.resilience().hints_replayed.load(), 1u);
  EXPECT_EQ(c.NodeContentFingerprint(0), c.NodeContentFingerprint(1));
}

TEST(FaultToleranceTest, TombstoneHintPreventsDeleteResurrection) {
  ClusterOptions opts = FastOptions(2, 2);
  opts.write_ack = WriteAck::kOne;
  Cluster c(opts);
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  c.SetNodeDown(0, true);
  auto del = c.Delete("t", 1, "k");  // node 0 misses the delete
  ASSERT_TRUE(del.ok());
  EXPECT_TRUE(*del);
  c.SetNodeDown(0, false);
  // Node 0 still holds the row; replaying the tombstone removes it
  // instead of letting the key resurrect.
  EXPECT_EQ(c.PendingHints(0), 1u);
  ASSERT_TRUE(c.ReplayHints(0).ok());
  EXPECT_TRUE(c.Get("t", 1, "k").status().IsNotFound());
  EXPECT_EQ(c.TotalKeys(), 0u);
  EXPECT_EQ(c.NodeContentFingerprint(0), c.NodeContentFingerprint(1));
}

TEST(FaultToleranceTest, DirectWriteSupersedesOlderHint) {
  // A write committed directly to a rejoined (dirty) node makes the older
  // queued hint for the same key obsolete — replay must not roll the value
  // back.
  ClusterOptions opts = FastOptions(2, 2);
  opts.write_ack = WriteAck::kOne;
  Cluster c(opts);
  c.SetNodeDown(0, true);
  ASSERT_TRUE(c.Put("t", 1, "k", "old").ok());  // hint(k=old) for node 0
  c.SetNodeDown(0, false);
  ASSERT_TRUE(c.Put("t", 1, "k", "new").ok());  // lands on both directly
  ASSERT_TRUE(c.ReplayHints(0).ok());
  EXPECT_EQ(*c.Get("t", 1, "k"), "new");
  EXPECT_EQ(c.NodeContentFingerprint(0), c.NodeContentFingerprint(1));
}

TEST(FaultToleranceTest, ChecksumCatchesCorruptionAndFailsOver) {
  Cluster c(FastOptions(2, 2));
  ASSERT_TRUE(c.Put("t", 1, "k", "correct-value").ok());
  ASSERT_TRUE(c.Put("t", 1, "k2", "other-value").ok());
  FaultProfile rot;
  rot.corrupt_prob = 1.0;  // node 0 corrupts every value it returns
  c.SetFaultProfile(0, rot);
  for (int i = 0; i < 8; ++i) {
    // Corrupted bytes never reach the caller: the checksum rejects the
    // replica's answer and the read fails over.
    auto got = c.Get("t", 1, "k");
    ASSERT_TRUE(got.ok()) << got.status().ToString();
    EXPECT_EQ(*got, "correct-value");
    auto scanned = c.Scan("t", 1, "");
    ASSERT_TRUE(scanned.ok());
    ASSERT_EQ(scanned->size(), 2u);
    EXPECT_EQ((*scanned)[0].value, "correct-value");
    EXPECT_EQ((*scanned)[1].value, "other-value");
  }
  EXPECT_GT(c.resilience().checksum_failures.load(), 0u);
  EXPECT_GT(c.resilience().failovers.load(), 0u);
  // Batched reads verify too.
  ReadCallStats call;
  auto multi = c.MultiGet("t", {MultiGetKey{1, "k"}}, nullptr, nullptr, &call);
  ASSERT_TRUE(multi.ok());
  EXPECT_EQ(*(*multi)[0], "correct-value");
}

TEST(FaultToleranceTest, HedgedReadBeatsSlowReplica) {
  ClusterOptions opts = FastOptions(2, 2);
  opts.hedge_after_micros = 2'000;
  Cluster c(opts);
  std::vector<MultiGetKey> keys;
  for (int k = 0; k < 8; ++k) {
    std::string key = "k" + std::to_string(k);
    ASSERT_TRUE(c.Put("t", 1, key, "v" + std::to_string(k)).ok());
    keys.push_back(MultiGetKey{1, key});
  }
  FaultProfile slow;
  slow.added_latency_micros = 50'000;  // node 0: uniformly 50ms slow
  c.SetFaultProfile(0, slow);
  for (int i = 0; i < 6; ++i) {
    auto start = std::chrono::steady_clock::now();
    auto got = c.Get("t", 1, "k0");
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, "v0");
    // Whichever replica the rotation picks first, the hedge keeps the
    // read from paying the slow node's full 50ms.
    EXPECT_LT(ms, 40.0);
  }
  EXPECT_GT(c.resilience().hedges.load(), 0u);
  EXPECT_GT(c.resilience().hedge_wins.load(), 0u);
  // Batched reads hedge slow node batches to the keys' alternates.
  ReadCallStats call;
  auto multi = c.MultiGet("t", keys, nullptr, nullptr, &call);
  ASSERT_TRUE(multi.ok());
  for (int k = 0; k < 8; ++k) {
    ASSERT_TRUE((*multi)[k].has_value());
    EXPECT_EQ(*(*multi)[k], "v" + std::to_string(k));
  }
}

TEST(FaultToleranceTest, DeadlineBoundsARequest) {
  ClusterOptions opts = FastOptions(1, 1);
  opts.request_deadline_micros = 5'000;
  Cluster c(opts);
  ASSERT_TRUE(c.Put("t", 1, "k", "v").ok());
  FaultProfile slow;
  slow.added_latency_micros = 300'000;  // far past the deadline
  c.SetFaultProfile(0, slow);
  auto start = std::chrono::steady_clock::now();
  auto got = c.Get("t", 1, "k");
  double ms = std::chrono::duration<double, std::milli>(
                  std::chrono::steady_clock::now() - start)
                  .count();
  EXPECT_FALSE(got.ok());
  EXPECT_NE(got.status().message().find("deadline"), std::string::npos);
  EXPECT_LT(ms, 150.0);  // did not wait out the 300ms replica
}

TEST(FaultToleranceTest, RepairRestoresKilledNodeToTwinContents) {
  ClusterOptions opts = FastOptions(3, 2);
  opts.write_ack = WriteAck::kOne;  // writes keep succeeding during the kill
  Cluster faulty(opts);
  Cluster twin(opts);
  auto put_range = [](Cluster& c, int lo, int hi) {
    for (int k = lo; k < hi; ++k) {
      EXPECT_TRUE(c.Put("t", static_cast<uint64_t>(k % 11),
                        "k" + std::to_string(k), "v" + std::to_string(k))
                      .ok());
    }
  };
  put_range(faulty, 0, 50);
  put_range(twin, 0, 50);
  faulty.SetNodeDown(1, true);
  // Live mixed workload while node 1 is dead: new writes, overwrites and
  // deletes all miss it.
  put_range(faulty, 50, 120);
  put_range(twin, 50, 120);
  for (int k = 0; k < 10; ++k) {
    // kOne ack: both deletes succeed even with faulty's node 1 dead (the
    // dead replica gets a tombstone hint).
    EXPECT_TRUE(faulty
                    .Delete("t", static_cast<uint64_t>(k % 11),
                            "k" + std::to_string(k))
                    .ok());
    EXPECT_TRUE(twin
                    .Delete("t", static_cast<uint64_t>(k % 11),
                            "k" + std::to_string(k))
                    .ok());
  }
  faulty.SetNodeDown(1, false);
  ASSERT_TRUE(faulty.RepairNode(1).ok());
  EXPECT_FALSE(faulty.NodeDirty(1));
  EXPECT_EQ(faulty.PendingHints(1), 0u);
  // Byte-identical to the never-faulted twin, node by node.
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(faulty.NodeContentFingerprint(n),
              twin.NodeContentFingerprint(n))
        << "node " << n;
  }
  EXPECT_EQ(faulty.TotalKeys(), twin.TotalKeys());
  EXPECT_GT(faulty.resilience().repair_rows.load(), 0u);
}

TEST(LatencySimulationTest, ParallelRequestsOverlapOnServerThreads) {
  ClusterOptions opts;
  opts.num_nodes = 1;
  opts.server_threads_per_node = 4;
  opts.latency.enabled = true;
  opts.latency.seek_micros = 5'000;
  Cluster c(opts);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(c.Put("t", 1, "k" + std::to_string(i), "v").ok());
  }
  // 4 sequential gets ~ 20ms; 4 parallel gets on 4 server threads ~ 5ms.
  auto start = std::chrono::steady_clock::now();
  ParallelFor(4, 4, [&](size_t i) {
    ASSERT_TRUE(c.Get("t", 1, "k" + std::to_string(i)).ok());
  });
  double parallel_ms = std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  EXPECT_LT(parallel_ms, 16.0);
}

}  // namespace
}  // namespace hgs
