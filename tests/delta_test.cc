// Tests of the delta framework: event application, the delta algebra laws of
// Section 4.1 (sums, differences, intersections, identities, the documented
// non-commutativity), eventlist scoping, and serialization round trips.
// Includes randomized property tests driven by generated histories.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "delta/delta.h"
#include "delta/event.h"
#include "delta/eventlist.h"
#include "workload/generators.h"

namespace hgs {
namespace {

Delta MakeDelta(std::initializer_list<NodeId> nodes,
                std::initializer_list<std::pair<NodeId, NodeId>> edges = {}) {
  Delta d;
  for (NodeId n : nodes) d.PutNode(n, NodeRecord{});
  for (auto [u, v] : edges) {
    d.PutEdge(EdgeKey(u, v), EdgeRecord{.src = u, .dst = v, .directed = false, .attrs = {}});
  }
  return d;
}

TEST(EventTest, FactoriesPopulateFields) {
  Event e = Event::AddEdge(42, 1, 2, true, Attributes{{"w", "3"}});
  EXPECT_EQ(e.time, 42);
  EXPECT_EQ(e.type, EventType::kAddEdge);
  EXPECT_EQ(e.u, 1u);
  EXPECT_EQ(e.v, 2u);
  EXPECT_TRUE(e.directed);
  EXPECT_EQ(*e.attrs.Get("w"), "3");
}

TEST(EventTest, TouchesBothEndpointsOfEdge) {
  Event e = Event::AddEdge(1, 10, 20);
  EXPECT_TRUE(e.Touches(10));
  EXPECT_TRUE(e.Touches(20));
  EXPECT_FALSE(e.Touches(30));
  Event n = Event::SetNodeAttr(2, 10, "k", "v");
  EXPECT_TRUE(n.Touches(10));
  EXPECT_FALSE(n.Touches(20));
}

TEST(EventTest, SerializationRoundTripAllTypes) {
  std::vector<Event> events = {
      Event::AddNode(1, 5, Attributes{{"a", "b"}}),
      Event::RemoveNode(2, 5),
      Event::AddEdge(3, 1, 2, true, Attributes{{"w", "1.5"}}),
      Event::RemoveEdge(4, 1, 2),
      Event::SetNodeAttr(5, 7, "k", "new", "old"),
      Event::DelNodeAttr(6, 7, "k", "old"),
      Event::SetEdgeAttr(7, 1, 2, "w", "2", "1.5"),
      Event::DelEdgeAttr(8, 1, 2, "w", "2"),
  };
  BinaryWriter w;
  for (const Event& e : events) e.SerializeTo(&w);
  std::string buf = w.Finish();
  BinaryReader r(buf);
  for (const Event& e : events) {
    auto got = Event::DeserializeFrom(&r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, e);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(EventTest, ApplyToGraphLifecycle) {
  Graph g;
  ApplyEventToGraph(Event::AddNode(1, 1), &g);
  ApplyEventToGraph(Event::AddNode(2, 2), &g);
  ApplyEventToGraph(Event::AddEdge(3, 1, 2), &g);
  EXPECT_TRUE(g.HasEdge(1, 2));
  ApplyEventToGraph(Event::SetNodeAttr(4, 1, "color", "red"), &g);
  EXPECT_EQ(*g.GetNode(1)->attrs.Get("color"), "red");
  ApplyEventToGraph(Event::SetEdgeAttr(5, 1, 2, "w", "9"), &g);
  EXPECT_EQ(*g.GetEdge(1, 2)->attrs.Get("w"), "9");
  ApplyEventToGraph(Event::RemoveEdge(6, 1, 2), &g);
  EXPECT_FALSE(g.HasEdge(1, 2));
  ApplyEventToGraph(Event::RemoveNode(7, 1), &g);
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
}

TEST(DeltaTest, SumRightOperandWins) {
  Delta a;
  a.PutNode(1, NodeRecord{.attrs = Attributes{{"v", "old"}}});
  Delta b;
  b.PutNode(1, NodeRecord{.attrs = Attributes{{"v", "new"}}});
  Delta s = Delta::Sum(a, b);
  ASSERT_NE(s.FindNode(1), nullptr);
  EXPECT_EQ(*(*s.FindNode(1))->attrs.Get("v"), "new");
  // Non-commutativity witness (Definition 4 note).
  Delta s2 = Delta::Sum(b, a);
  EXPECT_FALSE(s == s2);
}

TEST(DeltaTest, SumWithEmptyIsIdentity) {
  Delta a = MakeDelta({1, 2}, {{1, 2}});
  EXPECT_EQ(Delta::Sum(a, Delta()), a);
  EXPECT_EQ(Delta::Sum(Delta(), a), a);
}

TEST(DeltaTest, SumIsAssociative) {
  Delta a = MakeDelta({1});
  Delta b;
  b.PutNode(1, NodeRecord{.attrs = Attributes{{"x", "1"}}});
  b.PutNode(2, NodeRecord{});
  Delta c;
  c.TombstoneNode(2);
  c.PutNode(3, NodeRecord{});
  EXPECT_EQ(Delta::Sum(Delta::Sum(a, b), c), Delta::Sum(a, Delta::Sum(b, c)));
}

TEST(DeltaTest, DifferenceLaws) {
  Delta a = MakeDelta({1, 2}, {{1, 2}});
  // Δ - Δ = ∅ and Δ - ∅ = Δ (Section 4.1).
  EXPECT_TRUE(Delta::Difference(a, a).Empty());
  EXPECT_EQ(Delta::Difference(a, Delta()), a);
  // Differing state on the same key is kept.
  Delta b;
  b.PutNode(1, NodeRecord{.attrs = Attributes{{"k", "v"}}});
  b.PutNode(2, NodeRecord{});
  Delta diff = Delta::Difference(a, b);
  EXPECT_NE(diff.FindNode(1), nullptr);   // states differ -> kept
  EXPECT_EQ(diff.FindNode(2), nullptr);   // identical -> removed
}

TEST(DeltaTest, IntersectKeepsIdenticalPairsOnly) {
  Delta a = MakeDelta({1, 2, 3}, {{1, 2}});
  Delta b = MakeDelta({2, 3}, {{1, 2}});
  Delta bmod = b;
  bmod.PutNode(3, NodeRecord{.attrs = Attributes{{"changed", "1"}}});
  Delta i = Delta::Intersect(a, bmod);
  EXPECT_EQ(i.FindNode(1), nullptr);
  EXPECT_NE(i.FindNode(2), nullptr);
  EXPECT_EQ(i.FindNode(3), nullptr);  // differing state excluded
  EXPECT_NE(i.FindEdge(EdgeKey(1, 2)), nullptr);
  // Δ ∩ ∅ = ∅.
  EXPECT_TRUE(Delta::Intersect(a, Delta()).Empty());
}

TEST(DeltaTest, UnionIdentity) {
  Delta a = MakeDelta({1, 2});
  EXPECT_EQ(Delta::Union(a, Delta()), a);
  EXPECT_EQ(Delta::Union(Delta(), a), a);
}

TEST(DeltaTest, ReconstructionInvariant) {
  // child == parent + (child - parent) whenever parent ⊆-compatible, the
  // identity the DeltaGraph hierarchy depends on.
  Delta parent = MakeDelta({1, 2}, {{1, 2}});
  Delta child = MakeDelta({1, 2, 3}, {{1, 2}, {2, 3}});
  child.PutNode(1, NodeRecord{.attrs = Attributes{{"a", "b"}}});
  Delta derived = Delta::Difference(child, parent);
  EXPECT_EQ(Delta::Sum(parent, derived), child);
}

TEST(DeltaTest, TombstonesPropagateThroughSum) {
  Delta base = MakeDelta({1, 2}, {{1, 2}});
  Delta removal;
  removal.TombstoneNode(1);
  removal.TombstoneEdge(EdgeKey(1, 2));
  Delta merged = Delta::Sum(base, removal);
  Graph g = merged.ToGraph();
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(DeltaTest, ApplyEventSequence) {
  Delta d;
  d.ApplyEvent(Event::AddNode(1, 1));
  d.ApplyEvent(Event::AddNode(2, 2));
  d.ApplyEvent(Event::AddEdge(3, 1, 2));
  d.ApplyEvent(Event::SetNodeAttr(4, 1, "k", "v"));
  d.ApplyEvent(Event::RemoveEdge(5, 1, 2));
  Graph g = d.ToGraph();
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_EQ(*g.GetNode(1)->attrs.Get("k"), "v");
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(DeltaTest, RemoveNodeTombstonesIncidentEdgesInDelta) {
  Delta d;
  d.ApplyEvent(Event::AddNode(1, 1));
  d.ApplyEvent(Event::AddNode(2, 2));
  d.ApplyEvent(Event::AddEdge(3, 1, 2));
  d.ApplyEvent(Event::RemoveNode(4, 1));
  const auto* edge = d.FindEdge(EdgeKey(1, 2));
  ASSERT_NE(edge, nullptr);
  EXPECT_FALSE(edge->has_value());  // tombstoned
}

TEST(DeltaTest, FilterByNodesKeepsIncidentEdges) {
  Delta d = MakeDelta({1, 2, 3}, {{1, 2}, {2, 3}});
  Delta f = d.FilterByNodes({1});
  EXPECT_NE(f.FindNode(1), nullptr);
  EXPECT_EQ(f.FindNode(2), nullptr);
  EXPECT_NE(f.FindEdge(EdgeKey(1, 2)), nullptr);  // one endpoint in scope
  EXPECT_EQ(f.FindEdge(EdgeKey(2, 3)), nullptr);
}

TEST(DeltaTest, ToGraphDropsDanglingEdges) {
  Delta d;
  d.PutEdge(EdgeKey(1, 2), EdgeRecord{.src = 1, .dst = 2, .directed = false, .attrs = {}});
  d.PutNode(1, NodeRecord{});
  EXPECT_EQ(d.ToGraph().NumEdges(), 0u);
  EXPECT_EQ(d.ToGraphKeepDangling().NumEdges(), 1u);
}

TEST(DeltaTest, SerializationRoundTrip) {
  Delta d = MakeDelta({1, 2, 3}, {{1, 2}, {2, 3}});
  d.PutNode(9, NodeRecord{.attrs = Attributes{{"label", "hub"}}});
  d.TombstoneNode(4);
  d.TombstoneEdge(EdgeKey(7, 8));
  auto back = Delta::Deserialize(d.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, d);
}

TEST(DeltaTest, DeserializeRejectsCorruption) {
  Delta d = MakeDelta({1, 2});
  std::string buf = d.Serialize();
  buf[buf.size() / 2] ^= 0x10;
  EXPECT_FALSE(Delta::Deserialize(buf).ok());
}

TEST(DeltaTest, FromGraphRoundTrip) {
  Graph g;
  g.AddNode(1, Attributes{{"x", "1"}});
  g.AddNode(2);
  g.AddEdge(1, 2, true, Attributes{{"w", "5"}});
  Delta d = Delta::FromGraph(g);
  EXPECT_EQ(d.Cardinality(), 3u);
  EXPECT_TRUE(d.ToGraph() == g);
}

TEST(EventListTest, FilterSemantics) {
  EventList list(0, 100);
  for (int i = 1; i <= 10; ++i) {
    list.Append(Event::AddNode(i * 10, static_cast<NodeId>(i)));
  }
  // (after, upto] semantics.
  EventList mid = list.FilterByTime(20, 50);
  ASSERT_EQ(mid.size(), 3u);  // 30, 40, 50
  EXPECT_EQ(mid.events().front().time, 30);
  EXPECT_EQ(mid.events().back().time, 50);
}

TEST(EventListTest, FilterByNode) {
  EventList list(0, 10);
  list.Append(Event::AddNode(1, 1));
  list.Append(Event::AddEdge(2, 1, 2));
  list.Append(Event::AddNode(3, 3));
  EventList for1 = list.FilterByNode(1);
  EXPECT_EQ(for1.size(), 2u);
  EventList for2 = list.FilterByNode(2);
  EXPECT_EQ(for2.size(), 1u);  // edge touches both endpoints
}

TEST(EventListTest, ApplyUpToStopsAtT) {
  EventList list(0, 100);
  list.Append(Event::AddNode(10, 1));
  list.Append(Event::AddNode(20, 2));
  list.Append(Event::AddNode(30, 3));
  Graph g;
  list.ApplyUpTo(20, &g);
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
  EXPECT_FALSE(g.HasNode(3));
}

TEST(EventListTest, SerializationRoundTrip) {
  EventList list(5, 50);
  list.Append(Event::AddNode(10, 1, Attributes{{"a", "1"}}));
  list.Append(Event::AddEdge(20, 1, 2, true));
  list.Append(Event::SetNodeAttr(30, 1, "a", "2", "1"));
  auto back = EventList::Deserialize(list.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, list);
}

TEST(EventListTest, SortIsStable) {
  EventList list(0, 10);
  list.Append(Event::AddNode(5, 2));
  list.Append(Event::AddNode(3, 1));
  list.Append(Event::AddNode(5, 3));
  list.Sort();
  EXPECT_EQ(list.events()[0].u, 1u);
  EXPECT_EQ(list.events()[1].u, 2u);  // equal keys keep insertion order
  EXPECT_EQ(list.events()[2].u, 3u);
}

// ---------------------------------------------------------------------------
// Property tests over generated histories.
// ---------------------------------------------------------------------------

class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaPropertyTest, SnapshotDeltaEqualsEventReplay) {
  // Accumulating events into a Delta and materializing equals replaying the
  // events into a Graph directly (Example 4: Δsnapshot = G(t) - G(-∞)).
  workload::WikiGrowthOptions opts;
  opts.num_events = 3'000;
  opts.seed = GetParam();
  auto events = workload::GenerateWikiGrowth(opts);
  auto churned = workload::AugmentWithChurn(
      std::move(events), {.num_events = 2'000, .seed = GetParam() + 100});

  Delta acc;
  for (const Event& e : churned) acc.ApplyEvent(e);
  Graph from_delta = acc.ToGraph();
  Graph replayed = workload::ReplayToGraph(churned, kMaxTimestamp);
  EXPECT_TRUE(from_delta == replayed);
}

TEST_P(DeltaPropertyTest, HierarchyReconstruction) {
  // parent = ∩ children; child == parent + (child - parent) for snapshots
  // taken from a generated history.
  workload::WikiGrowthOptions opts;
  opts.num_events = 2'000;
  opts.seed = GetParam();
  auto events = workload::GenerateWikiGrowth(opts);
  Timestamp t_mid = events[events.size() / 2].time;
  Delta child1 = Delta::FromGraph(workload::ReplayToGraph(events, t_mid));
  Delta child2 =
      Delta::FromGraph(workload::ReplayToGraph(events, kMaxTimestamp));
  Delta parent = Delta::Intersect(child1, child2);
  EXPECT_EQ(Delta::Sum(parent, Delta::Difference(child1, parent)), child1);
  EXPECT_EQ(Delta::Sum(parent, Delta::Difference(child2, parent)), child2);
}

TEST_P(DeltaPropertyTest, SerializedRoundTripOnGeneratedHistory) {
  workload::WikiGrowthOptions opts;
  opts.num_events = 1'500;
  opts.seed = GetParam() * 13 + 1;
  auto events = workload::GenerateWikiGrowth(opts);
  Delta acc;
  for (const Event& e : events) acc.ApplyEvent(e);
  auto back = Delta::Deserialize(acc.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, acc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace hgs
