// Tests of the delta framework: event application, the delta algebra laws of
// Section 4.1 (sums, differences, intersections, identities, the documented
// non-commutativity), eventlist scoping, and serialization round trips.
// Includes randomized property tests driven by generated histories.

#include <gtest/gtest.h>

#include <cstdlib>
#include <new>
#include <unordered_map>

#include "common/rng.h"
#include "delta/delta.h"
#include "delta/event.h"
#include "delta/eventlist.h"
#include "workload/generators.h"

// -- allocation counting ----------------------------------------------------
// Replaces the global allocator for this test binary with a pass-through
// that counts allocations made on the current thread while armed. Used to
// assert that filter outputs reserve once instead of growing.
//
// Under AddressSanitizer the replacement is disabled (mixing user-replaced
// operators with ASan's interposed ones trips alloc-dealloc-mismatch for
// allocations crossing the shared-library boundary); the counting-based
// tests skip themselves there.
#if defined(__SANITIZE_ADDRESS__)
#define HGS_ALLOC_COUNTING 0
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
#define HGS_ALLOC_COUNTING 0
#else
#define HGS_ALLOC_COUNTING 1
#endif
#else
#define HGS_ALLOC_COUNTING 1
#endif

static thread_local bool g_count_allocs = false;
static thread_local size_t g_alloc_count = 0;

#if HGS_ALLOC_COUNTING
void* operator new(std::size_t n) {
  if (g_count_allocs) ++g_alloc_count;
  void* p = std::malloc(n);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t n) { return operator new(n); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
#endif  // HGS_ALLOC_COUNTING

namespace hgs {
namespace {

/// Arms the allocation counter for the enclosing scope (this thread only).
class ScopedAllocCounter {
 public:
  ScopedAllocCounter() {
    g_alloc_count = 0;
    g_count_allocs = true;
  }
  ~ScopedAllocCounter() { g_count_allocs = false; }
  size_t count() const { return g_alloc_count; }
};

Delta MakeDelta(std::initializer_list<NodeId> nodes,
                std::initializer_list<std::pair<NodeId, NodeId>> edges = {}) {
  Delta d;
  for (NodeId n : nodes) d.PutNode(n, NodeRecord{});
  for (auto [u, v] : edges) {
    d.PutEdge(EdgeKey(u, v), EdgeRecord{.src = u, .dst = v, .directed = false, .attrs = {}});
  }
  return d;
}

TEST(EventTest, FactoriesPopulateFields) {
  Event e = Event::AddEdge(42, 1, 2, true, Attributes{{"w", "3"}});
  EXPECT_EQ(e.time, 42);
  EXPECT_EQ(e.type, EventType::kAddEdge);
  EXPECT_EQ(e.u, 1u);
  EXPECT_EQ(e.v, 2u);
  EXPECT_TRUE(e.directed);
  EXPECT_EQ(*e.attrs.Get("w"), "3");
}

TEST(EventTest, TouchesBothEndpointsOfEdge) {
  Event e = Event::AddEdge(1, 10, 20);
  EXPECT_TRUE(e.Touches(10));
  EXPECT_TRUE(e.Touches(20));
  EXPECT_FALSE(e.Touches(30));
  Event n = Event::SetNodeAttr(2, 10, "k", "v");
  EXPECT_TRUE(n.Touches(10));
  EXPECT_FALSE(n.Touches(20));
}

TEST(EventTest, SerializationRoundTripAllTypes) {
  std::vector<Event> events = {
      Event::AddNode(1, 5, Attributes{{"a", "b"}}),
      Event::RemoveNode(2, 5),
      Event::AddEdge(3, 1, 2, true, Attributes{{"w", "1.5"}}),
      Event::RemoveEdge(4, 1, 2),
      Event::SetNodeAttr(5, 7, "k", "new", "old"),
      Event::DelNodeAttr(6, 7, "k", "old"),
      Event::SetEdgeAttr(7, 1, 2, "w", "2", "1.5"),
      Event::DelEdgeAttr(8, 1, 2, "w", "2"),
  };
  BinaryWriter w;
  for (const Event& e : events) e.SerializeTo(&w);
  std::string buf = w.Finish();
  BinaryReader r(buf);
  for (const Event& e : events) {
    auto got = Event::DeserializeFrom(&r);
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(*got, e);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(EventTest, ApplyToGraphLifecycle) {
  Graph g;
  ApplyEventToGraph(Event::AddNode(1, 1), &g);
  ApplyEventToGraph(Event::AddNode(2, 2), &g);
  ApplyEventToGraph(Event::AddEdge(3, 1, 2), &g);
  EXPECT_TRUE(g.HasEdge(1, 2));
  ApplyEventToGraph(Event::SetNodeAttr(4, 1, "color", "red"), &g);
  EXPECT_EQ(*g.GetNode(1)->attrs.Get("color"), "red");
  ApplyEventToGraph(Event::SetEdgeAttr(5, 1, 2, "w", "9"), &g);
  EXPECT_EQ(*g.GetEdge(1, 2)->attrs.Get("w"), "9");
  ApplyEventToGraph(Event::RemoveEdge(6, 1, 2), &g);
  EXPECT_FALSE(g.HasEdge(1, 2));
  ApplyEventToGraph(Event::RemoveNode(7, 1), &g);
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
}

TEST(DeltaTest, SumRightOperandWins) {
  Delta a;
  a.PutNode(1, NodeRecord{.attrs = Attributes{{"v", "old"}}});
  Delta b;
  b.PutNode(1, NodeRecord{.attrs = Attributes{{"v", "new"}}});
  Delta s = Delta::Sum(a, b);
  ASSERT_NE(s.FindNode(1), nullptr);
  EXPECT_EQ(*(*s.FindNode(1))->attrs.Get("v"), "new");
  // Non-commutativity witness (Definition 4 note).
  Delta s2 = Delta::Sum(b, a);
  EXPECT_FALSE(s == s2);
}

TEST(DeltaTest, SumWithEmptyIsIdentity) {
  Delta a = MakeDelta({1, 2}, {{1, 2}});
  EXPECT_EQ(Delta::Sum(a, Delta()), a);
  EXPECT_EQ(Delta::Sum(Delta(), a), a);
}

TEST(DeltaTest, SumIsAssociative) {
  Delta a = MakeDelta({1});
  Delta b;
  b.PutNode(1, NodeRecord{.attrs = Attributes{{"x", "1"}}});
  b.PutNode(2, NodeRecord{});
  Delta c;
  c.TombstoneNode(2);
  c.PutNode(3, NodeRecord{});
  EXPECT_EQ(Delta::Sum(Delta::Sum(a, b), c), Delta::Sum(a, Delta::Sum(b, c)));
}

TEST(DeltaTest, DifferenceLaws) {
  Delta a = MakeDelta({1, 2}, {{1, 2}});
  // Δ - Δ = ∅ and Δ - ∅ = Δ (Section 4.1).
  EXPECT_TRUE(Delta::Difference(a, a).Empty());
  EXPECT_EQ(Delta::Difference(a, Delta()), a);
  // Differing state on the same key is kept.
  Delta b;
  b.PutNode(1, NodeRecord{.attrs = Attributes{{"k", "v"}}});
  b.PutNode(2, NodeRecord{});
  Delta diff = Delta::Difference(a, b);
  EXPECT_NE(diff.FindNode(1), nullptr);   // states differ -> kept
  EXPECT_EQ(diff.FindNode(2), nullptr);   // identical -> removed
}

TEST(DeltaTest, IntersectKeepsIdenticalPairsOnly) {
  Delta a = MakeDelta({1, 2, 3}, {{1, 2}});
  Delta b = MakeDelta({2, 3}, {{1, 2}});
  Delta bmod = b;
  bmod.PutNode(3, NodeRecord{.attrs = Attributes{{"changed", "1"}}});
  Delta i = Delta::Intersect(a, bmod);
  EXPECT_EQ(i.FindNode(1), nullptr);
  EXPECT_NE(i.FindNode(2), nullptr);
  EXPECT_EQ(i.FindNode(3), nullptr);  // differing state excluded
  EXPECT_NE(i.FindEdge(EdgeKey(1, 2)), nullptr);
  // Δ ∩ ∅ = ∅.
  EXPECT_TRUE(Delta::Intersect(a, Delta()).Empty());
}

TEST(DeltaTest, UnionIdentity) {
  Delta a = MakeDelta({1, 2});
  EXPECT_EQ(Delta::Union(a, Delta()), a);
  EXPECT_EQ(Delta::Union(Delta(), a), a);
}

TEST(DeltaTest, ReconstructionInvariant) {
  // child == parent + (child - parent) whenever parent ⊆-compatible, the
  // identity the DeltaGraph hierarchy depends on.
  Delta parent = MakeDelta({1, 2}, {{1, 2}});
  Delta child = MakeDelta({1, 2, 3}, {{1, 2}, {2, 3}});
  child.PutNode(1, NodeRecord{.attrs = Attributes{{"a", "b"}}});
  Delta derived = Delta::Difference(child, parent);
  EXPECT_EQ(Delta::Sum(parent, derived), child);
}

TEST(DeltaTest, TombstonesPropagateThroughSum) {
  Delta base = MakeDelta({1, 2}, {{1, 2}});
  Delta removal;
  removal.TombstoneNode(1);
  removal.TombstoneEdge(EdgeKey(1, 2));
  Delta merged = Delta::Sum(base, removal);
  Graph g = merged.ToGraph();
  EXPECT_FALSE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
  EXPECT_EQ(g.NumEdges(), 0u);
}

TEST(DeltaTest, ApplyEventSequence) {
  Delta d;
  d.ApplyEvent(Event::AddNode(1, 1));
  d.ApplyEvent(Event::AddNode(2, 2));
  d.ApplyEvent(Event::AddEdge(3, 1, 2));
  d.ApplyEvent(Event::SetNodeAttr(4, 1, "k", "v"));
  d.ApplyEvent(Event::RemoveEdge(5, 1, 2));
  Graph g = d.ToGraph();
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_EQ(*g.GetNode(1)->attrs.Get("k"), "v");
  EXPECT_FALSE(g.HasEdge(1, 2));
}

TEST(DeltaTest, RemoveNodeTombstonesIncidentEdgesInDelta) {
  Delta d;
  d.ApplyEvent(Event::AddNode(1, 1));
  d.ApplyEvent(Event::AddNode(2, 2));
  d.ApplyEvent(Event::AddEdge(3, 1, 2));
  d.ApplyEvent(Event::RemoveNode(4, 1));
  const auto* edge = d.FindEdge(EdgeKey(1, 2));
  ASSERT_NE(edge, nullptr);
  EXPECT_FALSE(edge->has_value());  // tombstoned
}

TEST(DeltaTest, FilterByNodesKeepsIncidentEdges) {
  Delta d = MakeDelta({1, 2, 3}, {{1, 2}, {2, 3}});
  Delta f = d.FilterByNodes({1});
  EXPECT_NE(f.FindNode(1), nullptr);
  EXPECT_EQ(f.FindNode(2), nullptr);
  EXPECT_NE(f.FindEdge(EdgeKey(1, 2)), nullptr);  // one endpoint in scope
  EXPECT_EQ(f.FindEdge(EdgeKey(2, 3)), nullptr);
}

TEST(DeltaTest, ToGraphDropsDanglingEdges) {
  Delta d;
  d.PutEdge(EdgeKey(1, 2), EdgeRecord{.src = 1, .dst = 2, .directed = false, .attrs = {}});
  d.PutNode(1, NodeRecord{});
  EXPECT_EQ(d.ToGraph().NumEdges(), 0u);
  EXPECT_EQ(d.ToGraphKeepDangling().NumEdges(), 1u);
}

TEST(DeltaTest, SerializationRoundTrip) {
  Delta d = MakeDelta({1, 2, 3}, {{1, 2}, {2, 3}});
  d.PutNode(9, NodeRecord{.attrs = Attributes{{"label", "hub"}}});
  d.TombstoneNode(4);
  d.TombstoneEdge(EdgeKey(7, 8));
  auto back = Delta::Deserialize(d.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, d);
}

TEST(DeltaTest, DeserializeRejectsCorruption) {
  Delta d = MakeDelta({1, 2});
  std::string buf = d.Serialize();
  buf[buf.size() / 2] ^= 0x10;
  EXPECT_FALSE(Delta::Deserialize(buf).ok());
}

TEST(DeltaTest, FromGraphRoundTrip) {
  Graph g;
  g.AddNode(1, Attributes{{"x", "1"}});
  g.AddNode(2);
  g.AddEdge(1, 2, true, Attributes{{"w", "5"}});
  Delta d = Delta::FromGraph(g);
  EXPECT_EQ(d.Cardinality(), 3u);
  EXPECT_TRUE(d.ToGraph() == g);
}

TEST(EventListTest, FilterSemantics) {
  EventList list(0, 100);
  for (int i = 1; i <= 10; ++i) {
    list.Append(Event::AddNode(i * 10, static_cast<NodeId>(i)));
  }
  // (after, upto] semantics.
  EventList mid = list.FilterByTime(20, 50);
  ASSERT_EQ(mid.size(), 3u);  // 30, 40, 50
  EXPECT_EQ(mid.events().front().time, 30);
  EXPECT_EQ(mid.events().back().time, 50);
}

TEST(EventListTest, FilterByNode) {
  EventList list(0, 10);
  list.Append(Event::AddNode(1, 1));
  list.Append(Event::AddEdge(2, 1, 2));
  list.Append(Event::AddNode(3, 3));
  EventList for1 = list.FilterByNode(1);
  EXPECT_EQ(for1.size(), 2u);
  EventList for2 = list.FilterByNode(2);
  EXPECT_EQ(for2.size(), 1u);  // edge touches both endpoints
}

TEST(EventListTest, ApplyUpToStopsAtT) {
  EventList list(0, 100);
  list.Append(Event::AddNode(10, 1));
  list.Append(Event::AddNode(20, 2));
  list.Append(Event::AddNode(30, 3));
  Graph g;
  list.ApplyUpTo(20, &g);
  EXPECT_TRUE(g.HasNode(1));
  EXPECT_TRUE(g.HasNode(2));
  EXPECT_FALSE(g.HasNode(3));
}

TEST(EventListTest, SerializationRoundTrip) {
  EventList list(5, 50);
  list.Append(Event::AddNode(10, 1, Attributes{{"a", "1"}}));
  list.Append(Event::AddEdge(20, 1, 2, true));
  list.Append(Event::SetNodeAttr(30, 1, "a", "2", "1"));
  auto back = EventList::Deserialize(list.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, list);
}

TEST(EventListTest, SortIsStable) {
  EventList list(0, 10);
  list.Append(Event::AddNode(5, 2));
  list.Append(Event::AddNode(3, 1));
  list.Append(Event::AddNode(5, 3));
  list.Sort();
  EXPECT_EQ(list.events()[0].u, 1u);
  EXPECT_EQ(list.events()[1].u, 2u);  // equal keys keep insertion order
  EXPECT_EQ(list.events()[2].u, 3u);
}

// ---------------------------------------------------------------------------
// Property tests over generated histories.
// ---------------------------------------------------------------------------

class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaPropertyTest, SnapshotDeltaEqualsEventReplay) {
  // Accumulating events into a Delta and materializing equals replaying the
  // events into a Graph directly (Example 4: Δsnapshot = G(t) - G(-∞)).
  workload::WikiGrowthOptions opts;
  opts.num_events = 3'000;
  opts.seed = GetParam();
  auto events = workload::GenerateWikiGrowth(opts);
  auto churned = workload::AugmentWithChurn(
      std::move(events), {.num_events = 2'000, .seed = GetParam() + 100});

  Delta acc;
  for (const Event& e : churned) acc.ApplyEvent(e);
  Graph from_delta = acc.ToGraph();
  Graph replayed = workload::ReplayToGraph(churned, kMaxTimestamp);
  EXPECT_TRUE(from_delta == replayed);
}

TEST_P(DeltaPropertyTest, HierarchyReconstruction) {
  // parent = ∩ children; child == parent + (child - parent) for snapshots
  // taken from a generated history.
  workload::WikiGrowthOptions opts;
  opts.num_events = 2'000;
  opts.seed = GetParam();
  auto events = workload::GenerateWikiGrowth(opts);
  Timestamp t_mid = events[events.size() / 2].time;
  Delta child1 = Delta::FromGraph(workload::ReplayToGraph(events, t_mid));
  Delta child2 =
      Delta::FromGraph(workload::ReplayToGraph(events, kMaxTimestamp));
  Delta parent = Delta::Intersect(child1, child2);
  EXPECT_EQ(Delta::Sum(parent, Delta::Difference(child1, parent)), child1);
  EXPECT_EQ(Delta::Sum(parent, Delta::Difference(child2, parent)), child2);
}

TEST_P(DeltaPropertyTest, SerializedRoundTripOnGeneratedHistory) {
  workload::WikiGrowthOptions opts;
  opts.num_events = 1'500;
  opts.seed = GetParam() * 13 + 1;
  auto events = workload::GenerateWikiGrowth(opts);
  Delta acc;
  for (const Event& e : events) acc.ApplyEvent(e);
  auto back = Delta::Deserialize(acc.Serialize());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, acc);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

// ---------------------------------------------------------------------------
// Bulk vs scalar decode equivalence, move-aware overloads, and allocation
// discipline of the filter paths.
// ---------------------------------------------------------------------------

std::string RandomString(Rng* rng, size_t max_len) {
  size_t len = rng->Uniform(max_len + 1);
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(static_cast<char>('a' + rng->Uniform(26)));
  }
  return s;
}

Attributes RandomAttrs(Rng* rng) {
  Attributes attrs;
  size_t n = rng->Uniform(4);
  for (size_t i = 0; i < n; ++i) {
    attrs.Set(RandomString(rng, 6), RandomString(rng, 12));
  }
  return attrs;
}

/// A random event covering every EventType, including empty and long
/// strings, so the fuzz round trip exercises each decode branch.
Event RandomEvent(Rng* rng, Timestamp t) {
  NodeId u = rng->Uniform(50);
  NodeId v = rng->Uniform(50);
  switch (rng->Uniform(8)) {
    case 0:
      return Event::AddNode(t, u, RandomAttrs(rng));
    case 1:
      return Event::RemoveNode(t, u);
    case 2:
      return Event::AddEdge(t, u, v, rng->Uniform(2) == 0, RandomAttrs(rng));
    case 3:
      return Event::RemoveEdge(t, u, v);
    case 4:
      return Event::SetNodeAttr(t, u, RandomString(rng, 8),
                                RandomString(rng, 20), RandomString(rng, 20));
    case 5:
      return Event::DelNodeAttr(t, u, RandomString(rng, 8),
                                RandomString(rng, 20));
    case 6:
      return Event::SetEdgeAttr(t, u, v, RandomString(rng, 8),
                                RandomString(rng, 20), RandomString(rng, 20));
    default:
      return Event::DelEdgeAttr(t, u, v, RandomString(rng, 8),
                                RandomString(rng, 20));
  }
}

TEST(BulkDecodeTest, EventListBulkMatchesScalarOnFuzzedInputs) {
  Rng rng(20260731);
  for (int round = 0; round < 50; ++round) {
    EventList list(0, 10'000);
    size_t n = rng.Uniform(40);
    for (size_t i = 0; i < n; ++i) {
      list.Append(RandomEvent(&rng, static_cast<Timestamp>(i + 1)));
    }
    std::string wire = list.Serialize();
    // Bulk path (the Deserialize hot path).
    auto bulk = EventList::Deserialize(wire);
    ASSERT_TRUE(bulk.ok());
    // Scalar reference path.
    BinaryReader r(wire);
    ASSERT_TRUE(r.VerifyChecksum().ok());
    auto scalar = EventList::DeserializeFrom(&r);
    ASSERT_TRUE(scalar.ok());
    EXPECT_TRUE(*bulk == *scalar);
    EXPECT_TRUE(*bulk == list);
  }
}

TEST(BulkDecodeTest, DeltaBulkMatchesScalarOnFuzzedInputs) {
  Rng rng(20260801);
  for (int round = 0; round < 50; ++round) {
    Delta d;
    size_t n = rng.Uniform(60);
    for (size_t i = 0; i < n; ++i) {
      d.ApplyEvent(RandomEvent(&rng, static_cast<Timestamp>(i + 1)));
    }
    std::string wire = d.Serialize();
    auto bulk = Delta::Deserialize(wire);
    ASSERT_TRUE(bulk.ok());
    BinaryReader r(wire);
    ASSERT_TRUE(r.VerifyChecksum().ok());
    auto scalar = Delta::DeserializeFrom(&r);
    ASSERT_TRUE(scalar.ok());
    EXPECT_TRUE(*bulk == *scalar);
    EXPECT_TRUE(*bulk == d);
  }
}

TEST(BulkDecodeTest, CorruptBuffersErrorWithoutCrashing) {
  Rng rng(7);
  EventList list(0, 100);
  for (int i = 0; i < 10; ++i) {
    list.Append(RandomEvent(&rng, static_cast<Timestamp>(i + 1)));
  }
  std::string wire = list.Serialize();
  // Truncations at every length: either a checksum error or (never, for
  // this corpus) a clean decode — but no crash or hang.
  for (size_t len = 0; len < wire.size(); ++len) {
    auto res = EventList::Deserialize(std::string_view(wire).substr(0, len));
    EXPECT_FALSE(res.ok());
  }
  // Single-byte flips are caught by the checksum before bulk decode runs.
  for (size_t i = 0; i < wire.size(); ++i) {
    std::string bad = wire;
    bad[i] = static_cast<char>(bad[i] ^ 0x5A);
    (void)EventList::Deserialize(bad);
  }
}

TEST(DeltaTest, RvalueAddMatchesCopyAddAndEmptiesSource) {
  Rng rng(11);
  Delta a, b;
  for (int i = 0; i < 30; ++i) {
    a.ApplyEvent(RandomEvent(&rng, i + 1));
    b.ApplyEvent(RandomEvent(&rng, i + 1));
  }
  Delta acc_copy = a;
  acc_copy.Add(b);
  Delta acc_move = a;
  Delta b_doomed = b;
  acc_move.Add(std::move(b_doomed));
  EXPECT_TRUE(acc_copy == acc_move);
  EXPECT_TRUE(b_doomed.Empty());
  // Adding into an empty delta (the first merge slot) is also identical.
  Delta onto_empty;
  Delta b_doomed2 = b;
  onto_empty.Add(std::move(b_doomed2));
  EXPECT_TRUE(onto_empty == b);
}

TEST(EventListTest, RvalueApplyUpToMatchesConstApply) {
  Rng rng(12);
  EventList list(0, 1'000);
  for (int i = 0; i < 40; ++i) {
    list.Append(RandomEvent(&rng, static_cast<Timestamp>(i + 1)));
  }
  Delta by_ref;
  list.ApplyUpTo(25, &by_ref);
  Delta by_move;
  EventList doomed = list;
  std::move(doomed).ApplyUpTo(25, &by_move);
  EXPECT_TRUE(by_ref == by_move);
}

TEST(EventListTest, FilterByNodeReservesOutputAndDoesNotReallocate) {
  if (!HGS_ALLOC_COUNTING) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  EventList list(0, 10'000);
  for (int i = 0; i < 200; ++i) {
    // Attribute-free edge events: copying one allocates nothing (SSO
    // strings, empty attribute vectors), so the only allocation in
    // FilterByNode is the reserved output buffer.
    list.Append(Event::AddEdge(i + 1, 1, static_cast<NodeId>(2 + i % 7)));
  }
  size_t allocs = 0;
  EventList out;
  {
    ScopedAllocCounter counter;
    out = list.FilterByNode(1);
    allocs = counter.count();
  }
  EXPECT_EQ(out.size(), 200u);
  EXPECT_LE(allocs, 2u);

  // The consuming overload moves matching events out.
  EventList doomed = list;
  EventList moved = std::move(doomed).FilterByNode(1);
  EXPECT_TRUE(moved == out);
  EXPECT_TRUE(doomed.empty());
}

// ---------------------------------------------------------------------------
// Flat-map representation: equivalence against a reference hash-map Delta,
// batched event application, removal-scan regression, serde exactness.
// ---------------------------------------------------------------------------

/// Reference implementation of the delta semantics over two hash maps (the
/// pre-flat-map representation). The flat-map algebra must stay
/// content-equivalent to this across arbitrary event sequences.
struct RefDelta {
  std::unordered_map<NodeId, std::optional<NodeRecord>> nodes;
  std::unordered_map<EdgeKey, std::optional<EdgeRecord>, EdgeKeyHash> edges;

  void Apply(const Event& e) {
    switch (e.type) {
      case EventType::kAddNode:
        nodes[e.u] = NodeRecord{.attrs = e.attrs};
        break;
      case EventType::kRemoveNode: {
        nodes[e.u] = std::nullopt;
        for (auto& [key, rec] : edges) {
          if ((key.u == e.u || key.v == e.u) && rec.has_value()) {
            rec = std::nullopt;
          }
        }
        break;
      }
      case EventType::kAddEdge:
        edges[EdgeKey(e.u, e.v)] = EdgeRecord{
            .src = e.u, .dst = e.v, .directed = e.directed, .attrs = e.attrs};
        break;
      case EventType::kRemoveEdge:
        edges[EdgeKey(e.u, e.v)] = std::nullopt;
        break;
      case EventType::kSetNodeAttr: {
        auto& slot = nodes[e.u];
        if (!slot.has_value()) slot = NodeRecord{};
        slot->attrs.Set(e.key, e.value);
        break;
      }
      case EventType::kDelNodeAttr: {
        auto it = nodes.find(e.u);
        if (it != nodes.end() && it->second.has_value()) {
          it->second->attrs.Erase(e.key);
        }
        break;
      }
      case EventType::kSetEdgeAttr: {
        auto& slot = edges[EdgeKey(e.u, e.v)];
        if (!slot.has_value()) {
          slot = EdgeRecord{
              .src = e.u, .dst = e.v, .directed = e.directed, .attrs = {}};
        }
        slot->attrs.Set(e.key, e.value);
        break;
      }
      case EventType::kDelEdgeAttr: {
        auto it = edges.find(EdgeKey(e.u, e.v));
        if (it != edges.end() && it->second.has_value()) {
          it->second->attrs.Erase(e.key);
        }
        break;
      }
    }
  }

  void Add(const RefDelta& o) {
    for (const auto& [id, rec] : o.nodes) nodes[id] = rec;
    for (const auto& [key, rec] : o.edges) edges[key] = rec;
  }

  static RefDelta Difference(const RefDelta& a, const RefDelta& b) {
    RefDelta out;
    for (const auto& [id, rec] : a.nodes) {
      auto it = b.nodes.find(id);
      if (it == b.nodes.end() || !(it->second == rec)) out.nodes[id] = rec;
    }
    for (const auto& [key, rec] : a.edges) {
      auto it = b.edges.find(key);
      if (it == b.edges.end() || !(it->second == rec)) out.edges[key] = rec;
    }
    return out;
  }

  static RefDelta Intersect(const RefDelta& a, const RefDelta& b) {
    RefDelta out;
    for (const auto& [id, rec] : a.nodes) {
      auto it = b.nodes.find(id);
      if (it != b.nodes.end() && it->second == rec) out.nodes[id] = rec;
    }
    for (const auto& [key, rec] : a.edges) {
      auto it = b.edges.find(key);
      if (it != b.edges.end() && it->second == rec) out.edges[key] = rec;
    }
    return out;
  }

  static RefDelta Union(const RefDelta& a, const RefDelta& b) {
    RefDelta out = b;
    for (const auto& [id, rec] : a.nodes) out.nodes[id] = rec;
    for (const auto& [key, rec] : a.edges) out.edges[key] = rec;
    return out;
  }
};

RefDelta ToRef(const Delta& d) {
  RefDelta out;
  d.ForEachNodeEntry([&](NodeId id, const std::optional<NodeRecord>& rec) {
    out.nodes[id] = rec;
  });
  d.ForEachEdgeEntry(
      [&](const EdgeKey& key, const std::optional<EdgeRecord>& rec) {
        out.edges[key] = rec;
      });
  return out;
}

::testing::AssertionResult SameContent(const Delta& d, const RefDelta& r) {
  RefDelta got = ToRef(d);
  if (got.nodes != r.nodes) {
    return ::testing::AssertionFailure()
           << "node entries differ: " << got.nodes.size() << " vs "
           << r.nodes.size();
  }
  if (got.edges != r.edges) {
    return ::testing::AssertionFailure()
           << "edge entries differ: " << got.edges.size() << " vs "
           << r.edges.size();
  }
  if (d.NodeEntryCount() != r.nodes.size() ||
      d.EdgeEntryCount() != r.edges.size()) {
    return ::testing::AssertionFailure() << "entry counts disagree";
  }
  return ::testing::AssertionSuccess();
}

class FlatMapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FlatMapPropertyTest, MatchesHashReferenceAcrossRandomEventSequences) {
  Rng rng(GetParam() * 7919 + 3);
  for (int round = 0; round < 8; ++round) {
    // Two independently built deltas, mutated through the full event set.
    Delta d1, d2;
    RefDelta r1, r2;
    const size_t n1 = 20 + rng.Uniform(150);
    const size_t n2 = 20 + rng.Uniform(150);
    for (size_t i = 0; i < n1; ++i) {
      Event e = RandomEvent(&rng, static_cast<Timestamp>(i + 1));
      d1.ApplyEvent(e);
      r1.Apply(e);
    }
    for (size_t i = 0; i < n2; ++i) {
      Event e = RandomEvent(&rng, static_cast<Timestamp>(i + 1));
      d2.ApplyEvent(e);
      r2.Apply(e);
    }
    ASSERT_TRUE(SameContent(d1, r1));
    ASSERT_TRUE(SameContent(d2, r2));

    // Algebra equivalence (tombstones included in the entry comparison).
    RefDelta rsum = r1;
    rsum.Add(r2);
    EXPECT_TRUE(SameContent(Delta::Sum(d1, d2), rsum));
    EXPECT_TRUE(SameContent(Delta::Difference(d1, d2),
                            RefDelta::Difference(r1, r2)));
    EXPECT_TRUE(SameContent(Delta::Intersect(d1, d2),
                            RefDelta::Intersect(r1, r2)));
    EXPECT_TRUE(SameContent(Delta::Union(d1, d2), RefDelta::Union(r1, r2)));

    // In-place and consuming sums agree with the functional one.
    Delta acc = d1;
    acc.Add(d2);
    EXPECT_TRUE(SameContent(acc, rsum));
    Delta acc2 = d1;
    Delta doomed = d2;
    acc2.Add(std::move(doomed));
    EXPECT_TRUE(SameContent(acc2, rsum));
    EXPECT_TRUE(doomed.Empty());

    // Serde round trip is content-preserving, lands compact, and the
    // re-serialized bytes are canonical (key-ordered).
    std::string wire = d1.Serialize();
    auto back = Delta::Deserialize(wire);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(*back == d1);
    EXPECT_TRUE(back->IsCompact());
    EXPECT_EQ(back->Serialize(), wire);
  }
}

TEST_P(FlatMapPropertyTest, BatchedApplyEventsMatchesSequentialReplay) {
  Rng rng(GetParam() * 104729 + 11);
  for (int round = 0; round < 10; ++round) {
    // A chronologically sorted eventlist with repeated timestamps.
    EventList list(kMinTimestamp, kMaxTimestamp);
    Timestamp t = 0;
    const size_t n = 30 + rng.Uniform(200);
    for (size_t i = 0; i < n; ++i) {
      t += static_cast<Timestamp>(rng.Uniform(2));
      list.Append(RandomEvent(&rng, t));
    }
    // A base state built from an unrelated prefix of events.
    Delta base;
    for (int i = 0; i < 40; ++i) {
      base.ApplyEvent(RandomEvent(&rng, i));
    }
    if (rng.Uniform(2) == 0) base.Compact();

    // Sweep windows, including empty, full, and boundary-colliding ones.
    const Timestamp probes[] = {kMinTimestamp, 0, t / 3, t / 2, t,
                                kMaxTimestamp};
    for (Timestamp after : probes) {
      for (Timestamp upto : probes) {
        Delta seq = base;
        for (const Event& e : list.events()) {
          if (e.time > after && e.time <= upto) seq.ApplyEvent(e);
        }
        if (after == kMinTimestamp) {
          // The sentinel means unbounded below for the batched path.
          seq = base;
          for (const Event& e : list.events()) {
            if (e.time <= upto) seq.ApplyEvent(e);
          }
        }
        Delta batched = base;
        batched.ApplyEvents(list, after, upto);
        EXPECT_TRUE(batched == seq)
            << "window (" << after << ", " << upto << "]";

        Delta consumed = base;
        EventList doomed = list;
        consumed.ApplyEvents(std::move(doomed), after, upto);
        EXPECT_TRUE(consumed == seq)
            << "consuming window (" << after << ", " << upto << "]";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlatMapPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DeltaTest, BatchedRemovalReplayScansEdgeEntriesOnce) {
  // Removal-heavy replay regression: R remove-node events over E edge
  // entries must cost one bounded pass over the edge span, not R scans
  // (the quadratic behavior of the per-event loop this replaced).
  constexpr NodeId kNodes = 1'000;
  Delta base;
  for (NodeId i = 0; i < kNodes; ++i) {
    base.ApplyEvent(Event::AddNode(1, i));
    base.ApplyEvent(Event::AddNode(1, i + kNodes));
    base.ApplyEvent(Event::AddEdge(2, i, i + kNodes));
  }
  base.Compact();

  constexpr size_t kRemovals = 500;
  EventList removals(kMinTimestamp, kMaxTimestamp);
  for (size_t i = 0; i < kRemovals; ++i) {
    removals.Append(Event::RemoveNode(static_cast<Timestamp>(10 + i),
                                      static_cast<NodeId>(i)));
  }

  Delta seq = base;
  for (const Event& e : removals.events()) seq.ApplyEvent(e);

  Delta::ResetIncidentEdgeScanSteps();
  Delta batched = base;
  batched.ApplyEvents(removals, kMinTimestamp, kMaxTimestamp);
  const uint64_t steps = Delta::IncidentEdgeScanSteps();

  EXPECT_TRUE(batched == seq);
  // One pass, bounded by the edge entry count — not kRemovals * kNodes.
  EXPECT_LE(steps, static_cast<uint64_t>(kNodes));
  for (size_t i = 0; i < kRemovals; ++i) {
    const auto* edge =
        batched.FindEdge(EdgeKey(static_cast<NodeId>(i),
                                 static_cast<NodeId>(i) + kNodes));
    ASSERT_NE(edge, nullptr);
    EXPECT_FALSE(edge->has_value()) << "edge " << i << " not tombstoned";
  }
}

TEST(DeltaTest, ConsumingSetAttrMovesPayloadStrings) {
  if (!HGS_ALLOC_COUNTING) {
    GTEST_SKIP() << "allocation counting disabled under sanitizers";
  }
  // Long strings defeat SSO, so a copied payload must allocate and a moved
  // one must not.
  const std::string key(64, 'k');
  Delta d;
  d.ApplyEvent(Event::SetNodeAttr(1, 7, key, std::string(64, 'v')));
  d.Compact();

  // A copied oversized payload must reallocate the stored string...
  Event copied = Event::SetNodeAttr(2, 7, key, std::string(512, 'x'));
  size_t copy_allocs = 0;
  {
    ScopedAllocCounter counter;
    d.ApplyEvent(copied);
    copy_allocs = counter.count();
  }
  EXPECT_GT(copy_allocs, 0u);

  // ...while a donated one steals the event's buffer: zero allocations.
  Event update = Event::SetNodeAttr(3, 7, key, std::string(512, 'w'));
  size_t moved_allocs = 0;
  {
    ScopedAllocCounter counter;
    d.ApplyEvent(std::move(update));
    moved_allocs = counter.count();
  }
  EXPECT_EQ(*(*d.FindNode(7))->attrs.Get(key), std::string(512, 'w'));
  EXPECT_EQ(moved_allocs, 0u);
}

TEST(DeltaTest, SerializedSizeBytesIsExact) {
  Rng rng(20260730);
  for (int round = 0; round < 20; ++round) {
    Delta d;
    size_t n = rng.Uniform(80);
    for (size_t i = 0; i < n; ++i) {
      d.ApplyEvent(RandomEvent(&rng, static_cast<Timestamp>(i + 1)));
    }
    // Exact both with a pending append tail and compacted.
    EXPECT_EQ(d.SerializedSizeBytes(), d.Serialize().size());
    d.Compact();
    EXPECT_EQ(d.SerializedSizeBytes(), d.Serialize().size());
  }
}

TEST(EventListTest, SerializedSizeBytesIsExact) {
  Rng rng(20260729);
  for (int round = 0; round < 20; ++round) {
    EventList list(-3, 10'000);
    size_t n = rng.Uniform(50);
    for (size_t i = 0; i < n; ++i) {
      list.Append(RandomEvent(&rng, static_cast<Timestamp>(i + 1)));
    }
    EXPECT_EQ(list.SerializedSizeBytes(), list.Serialize().size());
  }
}

}  // namespace
}  // namespace hgs
