// Tests for the extension features beyond the minimal paper core:
// multipoint snapshot retrieval, the attribute-dimension Filter operator,
// incremental triangle counting (the paper's pattern-matching example),
// closeness centrality, and GetEventsInRange.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "kvstore/cluster.h"
#include "taf/context.h"
#include "taf/metrics.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions FastCluster() {
  ClusterOptions opts;
  opts.num_nodes = 2;
  opts.latency.enabled = false;
  return opts;
}

TGIOptions SmallOptions() {
  TGIOptions opts;
  opts.events_per_timespan = 2'000;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 400;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  return opts;
}

std::vector<Event> History(uint64_t seed, uint64_t n = 5'000) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 3});
}

TEST(MultipointSnapshotTest, MatchesIndividualSnapshots) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = History(201);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp end = workload::EndTime(events);
  // Mixed points: clustered within one checkpoint window, spread across
  // spans, and out of order.
  std::vector<Timestamp> times = {end / 2,       end / 2 + 17, end / 2 + 39,
                                  end / 4,       end,          end / 2 + 5,
                                  end * 3 / 4};
  auto multi = qm->GetMultipointSnapshots(times);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi->size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    Graph expected = workload::ReplayToGraph(events, times[i]);
    EXPECT_TRUE((*multi)[i] == expected) << "t=" << times[i];
  }
}

TEST(MultipointSnapshotTest, RollForwardIsCheaperThanIndependentFetches) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = History(203);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  Timestamp base = workload::EndTime(events) / 2;
  std::vector<Timestamp> times;
  for (int i = 0; i < 8; ++i) times.push_back(base + i * 5);

  FetchStats multi_stats;
  ASSERT_TRUE(qm->GetMultipointSnapshots(times, &multi_stats).ok());
  FetchStats single_stats;
  for (Timestamp t : times) {
    ASSERT_TRUE(qm->GetSnapshot(t, &single_stats).ok());
  }
  EXPECT_LT(multi_stats.kv_requests, single_stats.kv_requests);
}

TEST(MultipointSnapshotTest, DuplicateTimestampsShareMaterialization) {
  // Order restoration moves each materialized graph into its last output
  // slot and copies only for duplicate timestamps — every slot, duplicate
  // or not, must still hold the full correct snapshot.
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = History(209, 3'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();

  Timestamp end = workload::EndTime(events);
  std::vector<Timestamp> times = {end / 2, end,     end / 2, end / 4,
                                  end,     end / 2, end / 4};
  auto multi = qm->GetMultipointSnapshots(times);
  ASSERT_TRUE(multi.ok());
  ASSERT_EQ(multi->size(), times.size());
  for (size_t i = 0; i < times.size(); ++i) {
    Graph expected = workload::ReplayToGraph(events, times[i]);
    EXPECT_TRUE((*multi)[i] == expected) << "slot " << i << " t=" << times[i];
  }
}

TEST(MultipointSnapshotTest, EmptyAndSingleInput) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = History(205, 2'000);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager().value();
  auto empty = qm->GetMultipointSnapshots({});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->empty());
  auto one = qm->GetMultipointSnapshots({workload::EndTime(events)});
  ASSERT_TRUE(one.ok());
  EXPECT_TRUE((*one)[0] ==
              workload::ReplayToGraph(events, workload::EndTime(events)));
}

TEST(EventsInRangeTest, MatchesLogSlice) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = History(207);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  Timestamp from = events[events.size() / 3].time;
  Timestamp to = events[events.size() * 2 / 3].time;
  auto got = qm->GetEventsInRange(from, to);
  ASSERT_TRUE(got.ok());
  std::vector<Event> expected;
  for (const Event& e : events) {
    if (e.time > from && e.time <= to) expected.push_back(e);
  }
  ASSERT_EQ(got->size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ((*got)[i], expected[i]) << "index " << i;
  }
}

TEST(FilterAttributesTest, ProjectsAttributeDimension) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = History(211);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  taf::TAFContext ctx(qm.get(), 2);
  Timestamp end = workload::EndTime(events);
  auto son = ctx.Nodes().TimeRange(0, end).Fetch().value();

  // The wiki generator sets "kind" on every node and churns "views".
  taf::SoN filtered = son.FilterAttributes({"kind"});
  ASSERT_EQ(filtered.size(), son.size());
  for (const taf::NodeT& n : filtered.nodes()) {
    taf::StaticNodeView v = n.GetStateAt(end);
    if (!v.exists) continue;
    EXPECT_FALSE(v.attrs.Has("views")) << "node " << n.id();
    // Structure is untouched.
    EXPECT_EQ(v.Degree(), son.nodes()[&n - filtered.nodes().data()]
                              .GetStateAt(end)
                              .Degree());
  }
  // Events on projected-away keys are dropped.
  size_t views_events = 0;
  for (const taf::NodeT& n : filtered.nodes()) {
    for (const Event& e : n.history().events.events()) {
      if (e.type == EventType::kSetNodeAttr && e.key == "views") {
        ++views_events;
      }
    }
  }
  EXPECT_EQ(views_events, 0u);
}

TEST(IncrementalTriangleTest, DeltaEqualsFreshOnSubgraphVersions) {
  Cluster cluster(FastCluster());
  TGI tgi(&cluster, SmallOptions());
  auto events = History(213);
  ASSERT_TRUE(tgi.BuildFrom(events).ok());
  auto qm = tgi.OpenQueryManager(2).value();
  taf::TAFContext ctx(qm.get(), 2);
  Timestamp end = workload::EndTime(events);

  Graph final_state = workload::ReplayToGraph(events, end);
  std::vector<NodeId> seeds;
  for (NodeId id : final_state.NodeIds()) {
    if (final_state.Neighbors(id).size() >= 4) seeds.push_back(id);
    if (seeds.size() == 6) break;
  }
  ASSERT_FALSE(seeds.empty());
  auto sots =
      ctx.Subgraphs(1).TimeRange(end / 2, end).WithSeeds(seeds).Fetch()
          .value();

  std::function<double(const Graph&)> fresh = taf::metrics::TriangleCount;
  std::function<double(const Graph&, const double&, const Event&)> inc =
      taf::metrics::TriangleCountDelta;
  auto fresh_series = sots.NodeComputeTemporal(fresh);
  auto inc_series = sots.NodeComputeDelta(fresh, inc);
  ASSERT_EQ(fresh_series.size(), inc_series.size());
  for (size_t i = 0; i < fresh_series.size(); ++i) {
    ASSERT_EQ(fresh_series[i].size(), inc_series[i].size());
    for (size_t j = 0; j < fresh_series[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(fresh_series[i][j].second, inc_series[i][j].second)
          << "subgraph " << i << " version " << j;
    }
  }
}

TEST(ClosenessCentralityTest, StarCenterIsMostCentral) {
  Graph star;
  for (NodeId i = 2; i <= 6; ++i) star.AddEdge(1, i);
  double center = algo::ClosenessCentrality(star, 1);
  double leaf = algo::ClosenessCentrality(star, 2);
  EXPECT_GT(center, leaf);
  EXPECT_DOUBLE_EQ(center, 1.0);  // distance 1 to everyone
}

TEST(ClosenessCentralityTest, DisconnectedAndDegenerate) {
  Graph g;
  g.AddEdge(1, 2);
  g.AddNode(3);  // isolated
  EXPECT_DOUBLE_EQ(algo::ClosenessCentrality(g, 3), 0.0);
  EXPECT_DOUBLE_EQ(algo::ClosenessCentrality(g, 99), 0.0);
  // Connected pair in a 3-node graph: reachable fraction penalizes.
  double c = algo::ClosenessCentrality(g, 1);
  EXPECT_GT(c, 0.0);
  EXPECT_LT(c, 1.0);
}

TEST(ClosenessCentralityTest, PathEndpointsLessCentralThanMiddle) {
  Graph path;
  for (NodeId i = 1; i < 5; ++i) path.AddEdge(i, i + 1);
  EXPECT_GT(algo::ClosenessCentrality(path, 3),
            algo::ClosenessCentrality(path, 1));
}

}  // namespace
}  // namespace hgs
