// Seeded thread-safety violation: reads and writes a GUARDED_BY member
// without holding its mutex. This file is NOT part of the library build.
// CMake registers two compile-only checks over it:
//   * tsa_gate_catches_seeded_violation (WILL_FAIL): compiling with
//     -Werror=thread-safety-analysis must FAIL — proving the CI gate
//     actually fires on the class of bug it exists to catch;
//   * tsa_gate_positive_control: the same file without -Werror compiles,
//     proving a failure above is the analysis firing, not a broken file.
// Registered only under Clang; GCC expands the annotations to nothing.

#include "common/mutex.h"

namespace {

class SeededCounter {
 public:
  void Increment() {
    // BUG (intentional): touches count_ without acquiring mu_.
    ++count_;
  }

  int Get() const {
    hgs::MutexLock lock(mu_);
    return count_;
  }

 private:
  mutable hgs::Mutex mu_;
  int count_ GUARDED_BY(mu_) = 0;
};

}  // namespace

int SeededTsaViolationAnchor() {
  SeededCounter c;
  c.Increment();
  return c.Get();
}
