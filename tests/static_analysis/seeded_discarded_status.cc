// Seeded discarded-Status bug: drops the [[nodiscard]] return values of a
// Status- and a Result-returning call. This file is NOT part of the
// library build. CMake registers two compile-only checks over it:
//   * nodiscard_gate_catches_seeded_discard (WILL_FAIL): compiling with
//     -Werror=unused-result must FAIL — proving the gate catches silently
//     ignored fallible operations;
//   * nodiscard_gate_positive_control: the same file without -Werror
//     compiles, proving a failure above is the gate firing, not a broken
//     file.
// Works under both GCC and Clang (class-level [[nodiscard]] drives
// -Wunused-result on both).

#include "common/result.h"
#include "common/status.h"

namespace {

hgs::Status MightFail() { return hgs::Status::IOError("seeded"); }

hgs::Result<int> MightFailWithValue() { return 42; }

}  // namespace

void SeededDiscardAnchor() {
  // BUG (intentional): both returns are dropped on the floor.
  MightFail();
  MightFailWithValue();
}
