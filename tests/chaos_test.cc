// Chaos-tests the fault-tolerant replication stack end to end, at the TGI
// level: a cluster subjected to node kills, rejoins, hint replay, scripted
// transient faults, value corruption and full repair — all while a live
// batch-by-batch ingest and interleaved queries are running — must answer
// every query identically to a never-faulted twin cluster fed the same
// stream, and after recovery every node must be byte-identical to its twin.
//
// Quorum write acks (2 of 3) are what let ingest keep committing with a
// node dead; hinted handoff and repair are what make the dead node whole
// again. The suite runs under TSan in CI alongside the stress tests.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "kvstore/cluster.h"
#include "tgi/tgi.h"
#include "workload/generators.h"

namespace hgs {
namespace {

ClusterOptions ChaosCluster() {
  ClusterOptions opts;
  opts.num_nodes = 3;
  opts.replication = 3;
  opts.write_ack = WriteAck::kQuorum;  // 2 of 3: ingest survives one kill
  opts.latency.enabled = false;
  opts.max_retries = 3;
  opts.retry_backoff_micros = 10;  // keep scripted-fault retries fast
  return opts;
}

TGIOptions SmallOpts() {
  TGIOptions opts;
  opts.events_per_timespan = 1'500;
  opts.eventlist_size = 100;
  opts.checkpoint_interval = 300;
  opts.micro_delta_size = 64;
  opts.num_horizontal_partitions = 2;
  return opts;
}

std::vector<Event> History(uint64_t seed, uint64_t n) {
  workload::WikiGrowthOptions w;
  w.num_events = n / 2;
  w.seed = seed;
  auto events = workload::GenerateWikiGrowth(w);
  return workload::AugmentWithChurn(std::move(events),
                                    {.num_events = n / 2, .seed = seed + 9});
}

void ExpectQueriesMatchTwin(TGI& chaos, TGI& twin, Timestamp t,
                            const char* when) {
  auto qc = chaos.OpenQueryManager();
  auto qt = twin.OpenQueryManager();
  ASSERT_TRUE(qc.ok() && qt.ok());
  auto a = (*qc)->GetSnapshot(t);
  auto b = (*qt)->GetSnapshot(t);
  ASSERT_TRUE(a.ok()) << when << ": chaos snapshot: " << a.status().ToString();
  ASSERT_TRUE(b.ok()) << when << ": twin snapshot: " << b.status().ToString();
  EXPECT_TRUE(*a == *b) << when << ": snapshots diverge at t=" << t;
  for (NodeId id : {NodeId{3}, NodeId{17}, NodeId{42}}) {
    auto ha = (*qc)->GetNodeHistory(id, 0, t);
    auto hb = (*qt)->GetNodeHistory(id, 0, t);
    ASSERT_TRUE(ha.ok() && hb.ok()) << when << ": node " << id;
    EXPECT_EQ(ha->events.size(), hb->events.size()) << when << ": node " << id;
  }
}

TEST(ChaosTest, KillRejoinRepairDuringLiveIngestMatchesFaultFreeTwin) {
  auto events = History(1717, 6'000);
  Cluster chaos_cluster(ChaosCluster());
  Cluster twin_cluster(ChaosCluster());
  TGI chaos(&chaos_cluster, SmallOpts());
  TGI twin(&twin_cluster, SmallOpts());

  // Feed both the same stream batch by batch. Between batches, a scripted
  // chaos schedule kills, rejoins and degrades nodes; queries run against
  // both clusters and must agree the whole time.
  const size_t kBatch = 500;
  size_t step = 0;
  for (size_t off = 0; off < events.size(); off += kBatch, ++step) {
    size_t end = std::min(off + kBatch, events.size());
    std::vector<Event> batch(events.begin() + static_cast<ptrdiff_t>(off),
                             events.begin() + static_cast<ptrdiff_t>(end));
    ASSERT_TRUE(chaos.AppendBatch(batch).ok()) << "step " << step;
    ASSERT_TRUE(twin.AppendBatch(batch).ok()) << "step " << step;

    size_t victim = (step / 6) % 3;
    switch (step % 6) {
      case 0:  // kill: quorum writes keep succeeding, hints accumulate
        chaos_cluster.SetNodeDown(victim, true);
        break;
      case 2: {  // rejoin + hint replay brings the victim back clean
        chaos_cluster.SetNodeDown(victim, false);
        ASSERT_TRUE(chaos_cluster.ReplayHints(victim).ok())
            << "step " << step;
        break;
      }
      case 3: {  // flaky network on another node: retries absorb it
        FaultProfile flaky;
        flaky.transient_error_prob = 0.2;
        chaos_cluster.SetFaultProfile((victim + 1) % 3, flaky);
        break;
      }
      case 4: {  // bit rot on reads: checksums fail the replica over
        FaultProfile rot;
        rot.corrupt_prob = 0.2;
        chaos_cluster.SetFaultProfile((victim + 1) % 3, rot);
        break;
      }
      case 5:  // heal
        chaos_cluster.SetFaultProfile((victim + 1) % 3, FaultProfile{});
        break;
      default:
        break;
    }

    ExpectQueriesMatchTwin(chaos, twin, batch.back().time,
                           ("step " + std::to_string(step)).c_str());
    if (HasFatalFailure()) return;
  }

  // Recovery: heal every profile, rejoin everything, repair every node.
  for (size_t n = 0; n < 3; ++n) {
    chaos_cluster.SetFaultProfile(n, FaultProfile{});
    chaos_cluster.SetNodeDown(n, false);
  }
  for (size_t n = 0; n < 3; ++n) {
    ASSERT_TRUE(chaos_cluster.RepairNode(n).ok()) << "node " << n;
    EXPECT_FALSE(chaos_cluster.NodeDirty(n));
  }

  // After repair the chaos cluster is byte-identical to the twin, node by
  // node — kills, missed writes and corruption left no trace.
  for (size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(chaos_cluster.NodeContentFingerprint(n),
              twin_cluster.NodeContentFingerprint(n))
        << "node " << n;
  }
  EXPECT_EQ(chaos_cluster.ContentFingerprint(),
            twin_cluster.ContentFingerprint());
  EXPECT_EQ(chaos_cluster.TotalKeys(), twin_cluster.TotalKeys());

  // Full query equivalence after recovery, including against a direct
  // replay of the event stream.
  Timestamp end_time = workload::EndTime(events);
  auto qc = chaos.OpenQueryManager().value();
  auto qt = twin.OpenQueryManager().value();
  for (double frac : {0.3, 0.7, 1.0}) {
    Timestamp t = events[static_cast<size_t>(
                             static_cast<double>(events.size() - 1) * frac)]
                      .time;
    auto a = qc->GetSnapshot(t);
    auto b = qt->GetSnapshot(t);
    ASSERT_TRUE(a.ok() && b.ok()) << "t=" << t;
    EXPECT_TRUE(*a == *b) << "t=" << t;
    EXPECT_TRUE(*a == workload::ReplayToGraph(events, t)) << "t=" << t;
  }
  for (NodeId id : {NodeId{1}, NodeId{7}, NodeId{23}, NodeId{40}}) {
    auto a = qc->GetNodeHistory(id, 0, end_time);
    auto b = qt->GetNodeHistory(id, 0, end_time);
    ASSERT_TRUE(a.ok() && b.ok()) << "node " << id;
    EXPECT_EQ(a->events.size(), b->events.size()) << "node " << id;
  }
}

TEST(ChaosTest, HintReplayAloneMakesRejoinedNodeWhole) {
  // No full repair here: quorum writes continue with a node dead, hints
  // queue up for it, and replaying them on rejoin must reproduce the
  // never-faulted twin byte for byte (including overwritten rows, which
  // replay in write order).
  auto events = History(2929, 4'000);
  Cluster chaos_cluster(ChaosCluster());
  Cluster twin_cluster(ChaosCluster());
  TGI chaos(&chaos_cluster, SmallOpts());
  TGI twin(&twin_cluster, SmallOpts());

  const size_t kBatch = 1'000;
  size_t step = 0;
  for (size_t off = 0; off < events.size(); off += kBatch, ++step) {
    size_t end = std::min(off + kBatch, events.size());
    std::vector<Event> batch(events.begin() + static_cast<ptrdiff_t>(off),
                             events.begin() + static_cast<ptrdiff_t>(end));
    if (step == 1) chaos_cluster.SetNodeDown(2, true);
    ASSERT_TRUE(chaos.AppendBatch(batch).ok()) << "step " << step;
    ASSERT_TRUE(twin.AppendBatch(batch).ok()) << "step " << step;
    if (step == 2) {
      EXPECT_GT(chaos_cluster.PendingHints(2), 0u);
      chaos_cluster.SetNodeDown(2, false);
      EXPECT_TRUE(chaos_cluster.NodeDirty(2));
      ASSERT_TRUE(chaos_cluster.ReplayHints(2).ok());
      EXPECT_FALSE(chaos_cluster.NodeDirty(2));
    }
  }

  for (size_t n = 0; n < 3; ++n) {
    EXPECT_EQ(chaos_cluster.NodeContentFingerprint(n),
              twin_cluster.NodeContentFingerprint(n))
        << "node " << n;
  }
  EXPECT_EQ(chaos_cluster.TotalKeys(), twin_cluster.TotalKeys());
  EXPECT_GT(chaos_cluster.resilience().hints_replayed.load(), 0u);

  Timestamp end_time = workload::EndTime(events);
  auto qc = chaos.OpenQueryManager().value();
  auto qt = twin.OpenQueryManager().value();
  auto a = qc->GetSnapshot(end_time);
  auto b = qt->GetSnapshot(end_time);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(*a == *b);
  EXPECT_TRUE(*a == workload::ReplayToGraph(events, end_time));
}

}  // namespace
}  // namespace hgs
