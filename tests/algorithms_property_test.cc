// Property tests for the graph algorithm library on randomized graphs:
// every algorithm is checked against a brute-force reference or a
// mathematical invariant, across seeds (parameterized).

#include <gtest/gtest.h>

#include <unordered_set>

#include "common/rng.h"
#include "graph/algorithms.h"
#include "workload/generators.h"

namespace hgs {
namespace {

Graph RandomGraph(uint64_t seed, size_t n = 120, double edge_prob = 0.06) {
  Rng rng(seed);
  Graph g;
  for (NodeId i = 0; i < n; ++i) g.AddNode(i);
  for (NodeId i = 0; i < n; ++i) {
    for (NodeId j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(edge_prob)) g.AddEdge(i, j);
    }
  }
  return g;
}

uint64_t BruteForceTriangles(const Graph& g) {
  uint64_t count = 0;
  auto ids = g.NodeIds();
  std::sort(ids.begin(), ids.end());
  for (size_t a = 0; a < ids.size(); ++a) {
    for (size_t b = a + 1; b < ids.size(); ++b) {
      if (!g.HasEdge(ids[a], ids[b])) continue;
      for (size_t c = b + 1; c < ids.size(); ++c) {
        if (g.HasEdge(ids[a], ids[c]) && g.HasEdge(ids[b], ids[c])) ++count;
      }
    }
  }
  return count;
}

class AlgoPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AlgoPropertyTest, TriangleCountMatchesBruteForce) {
  Graph g = RandomGraph(GetParam());
  EXPECT_EQ(algo::TriangleCount(g), BruteForceTriangles(g));
}

TEST_P(AlgoPropertyTest, LccIsAWellDefinedRatio) {
  Graph g = RandomGraph(GetParam() + 10);
  g.ForEachNode([&](NodeId id, const NodeRecord&) {
    double c = algo::LocalClusteringCoefficient(g, id);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
    // Brute force: count closed pairs among neighbors.
    const auto& nbrs = g.Neighbors(id);
    if (nbrs.size() < 2) {
      EXPECT_DOUBLE_EQ(c, 0.0);
      return;
    }
    size_t closed = 0;
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.HasEdge(nbrs[i], nbrs[j])) ++closed;
      }
    }
    double expect = 2.0 * static_cast<double>(closed) /
                    (static_cast<double>(nbrs.size()) *
                     static_cast<double>(nbrs.size() - 1));
    EXPECT_NEAR(c, expect, 1e-12);
  });
}

TEST_P(AlgoPropertyTest, PageRankIsAProbabilityDistribution) {
  Graph g = RandomGraph(GetParam() + 20, 100, 0.05);
  auto pr = algo::PageRank(g, 40);
  double sum = 0.0;
  for (const auto& [id, score] : pr) {
    EXPECT_GT(score, 0.0);
    sum += score;
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);
}

TEST_P(AlgoPropertyTest, BfsDistancesSatisfyTriangleInequality) {
  Graph g = RandomGraph(GetParam() + 30, 80, 0.08);
  Rng rng(GetParam());
  auto ids = g.NodeIds();
  NodeId src = ids[rng.Uniform(ids.size())];
  auto dist = algo::BfsDistances(g, src);
  // d(src, v) <= d(src, u) + 1 for every edge (u, v).
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
    auto du = dist.find(key.u);
    auto dv = dist.find(key.v);
    ASSERT_EQ(du != dist.end(), dv != dist.end());
    if (du != dist.end()) {
      EXPECT_LE(std::abs(du->second - dv->second), 1);
    }
  });
}

TEST_P(AlgoPropertyTest, ComponentsPartitionTheGraph) {
  Graph g = RandomGraph(GetParam() + 40, 100, 0.02);  // sparse: many comps
  auto labels = algo::ConnectedComponents(g);
  EXPECT_EQ(labels.size(), g.NumNodes());
  // Edge endpoints share a label; the label is the component's min id.
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
    EXPECT_EQ(labels.at(key.u), labels.at(key.v));
  });
  for (const auto& [id, comp] : labels) {
    EXPECT_LE(comp, id);
    EXPECT_EQ(labels.at(comp), comp);  // the representative labels itself
  }
}

TEST_P(AlgoPropertyTest, DegreeDistributionSumsToNodeCount) {
  Graph g = RandomGraph(GetParam() + 50);
  auto hist = algo::DegreeDistribution(g);
  size_t total = 0;
  size_t weighted = 0;
  for (const auto& [deg, count] : hist) {
    total += count;
    weighted += deg * count;
  }
  EXPECT_EQ(total, g.NumNodes());
  EXPECT_EQ(weighted, 2 * g.NumEdges());  // handshake lemma
}

TEST_P(AlgoPropertyTest, InducedSubgraphIsClosedUnderMembership) {
  Graph g = RandomGraph(GetParam() + 60);
  Rng rng(GetParam() + 61);
  std::vector<NodeId> members;
  for (NodeId id : g.NodeIds()) {
    if (rng.Bernoulli(0.4)) members.push_back(id);
  }
  Graph sub = algo::InducedSubgraph(g, members);
  std::unordered_set<NodeId> member_set(members.begin(), members.end());
  EXPECT_EQ(sub.NumNodes(), member_set.size());
  sub.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
    EXPECT_TRUE(member_set.contains(key.u));
    EXPECT_TRUE(member_set.contains(key.v));
    EXPECT_TRUE(g.HasEdge(key.u, key.v));
  });
  // Every in-member edge of g survives.
  size_t expected_edges = 0;
  g.ForEachEdge([&](const EdgeKey& key, const EdgeRecord&) {
    if (member_set.contains(key.u) && member_set.contains(key.v)) {
      ++expected_edges;
    }
  });
  EXPECT_EQ(sub.NumEdges(), expected_edges);
}

TEST_P(AlgoPropertyTest, KHopNeighborhoodMatchesBfs) {
  Graph g = RandomGraph(GetParam() + 70, 90, 0.05);
  Rng rng(GetParam() + 71);
  auto ids = g.NodeIds();
  NodeId src = ids[rng.Uniform(ids.size())];
  for (int k : {1, 2, 3}) {
    auto hood = algo::KHopNeighborhood(g, src, k);
    auto dist = algo::BfsDistances(g, src, k);
    EXPECT_EQ(hood.size(), dist.size());
    for (NodeId n : hood) EXPECT_TRUE(dist.contains(n));
  }
}

TEST_P(AlgoPropertyTest, ClosenessBoundedByOne) {
  Graph g = RandomGraph(GetParam() + 80, 60, 0.1);
  g.ForEachNode([&](NodeId id, const NodeRecord&) {
    double c = algo::ClosenessCentrality(g, id);
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgoPropertyTest,
                         ::testing::Values(11, 22, 33, 44));

}  // namespace
}  // namespace hgs
