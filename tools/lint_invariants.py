#!/usr/bin/env python3
"""Repo-specific concurrency-invariant lint.

Checks that src/ observes the locking discipline documented in
src/common/mutex.h and README.md ("Concurrency invariants"):

  1. No raw standard-library locking primitives outside the annotated
     wrappers (common/mutex.h, common/thread_annotations.h). std::mutex is
     not a Clang TSA capability, so any state it guards is invisible to
     -Wthread-safety; hgs::Mutex / MutexLock / CondVar must be used instead.
  2. No naked .Lock()/.Unlock()/.lock()/.unlock() calls: critical sections
     use the scoped MutexLock holder so early returns cannot leak a held
     lock. (Mutex::Lock/Unlock exist only for MutexLock and CondVar.)
  3. Every `mutable` member is either a Mutex, an atomic, or carries a
     GUARDED_BY annotation — a bare mutable member is mutated through const
     paths and therefore needs a stated synchronization story. A
     `// lint: mutable-ok <reason>` comment on the same line waives this.
  4. No materializing Decompress() on the read path (src/tgi/,
     src/kvstore/): those layers must go through DecompressShared so
     stored-form blocks (kColumnar especially) decode as zero-copy windows
     and value_copies stays an honest counter. Decompress() is for tests
     and byte-exact round-trip checks only.

Exit status 0 when clean, 1 when violations were found (they are printed
as file:line: message, one per line). Run locally with:

    python3 tools/lint_invariants.py

`--self-test` runs the built-in corpus of known-good / known-bad snippets
and is wired into ctest as `lint_invariants_selftest`.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys

# Files that implement the wrappers and may touch the raw primitives.
ALLOWED_RAW_MUTEX = {
    "src/common/mutex.h",
    "src/common/thread_annotations.h",
}

RAW_PRIMITIVE_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable)\b"
)

# A naked lock/unlock call on some object: `foo.lock()`, `mu_.Unlock()`, ...
# MutexLock/CondVar internals live in the allow-listed files.
NAKED_LOCK_RE = re.compile(r"\.\s*(?:Lock|Unlock|lock|unlock)\s*\(\s*\)")

# `mutable <type> name...;` declarations. Deliberately line-based: the
# codebase's style keeps member declarations on one line (or wraps after the
# name, which still leaves `mutable <type>` on the first line).
MUTABLE_DECL_RE = re.compile(r"^\s*mutable\s+(?P<type>[A-Za-z_][\w:<>,\s*&]*?)\s+[A-Za-z_]\w*\s*(?:\{[^}]*\})?\s*(?:=[^;]*)?;")
MUTABLE_OK_TYPES = re.compile(r"^(hgs::)?(Mutex|std::atomic\b.*)$")
MUTABLE_WAIVER = "lint: mutable-ok"

# The materializing decoder. `\(` directly after the name keeps
# DecompressShared / DecompressCounted out of the match.
MATERIALIZING_DECOMPRESS_RE = re.compile(r"\bDecompress\s*\(")
# Read-path layers where every block decode must stay a window.
ZERO_COPY_DIRS = ("src/tgi/", "src/kvstore/")

COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def strip_noise(line: str) -> str:
    """Removes string literals and // comments so they cannot match."""
    return COMMENT_RE.sub("", STRING_RE.sub('""', line))


def lint_file(path: pathlib.Path, rel: str) -> list[str]:
    problems = []
    allow_raw = rel in ALLOWED_RAW_MUTEX
    try:
        text = path.read_text(encoding="utf-8")
    except UnicodeDecodeError:
        return [f"{rel}:1: not valid UTF-8"]
    for lineno, raw_line in enumerate(text.splitlines(), start=1):
        line = strip_noise(raw_line)
        if not allow_raw:
            m = RAW_PRIMITIVE_RE.search(line)
            if m:
                problems.append(
                    f"{rel}:{lineno}: raw std::{m.group(1)} — use the "
                    "annotated hgs::Mutex/MutexLock/CondVar from "
                    "common/mutex.h instead"
                )
            if NAKED_LOCK_RE.search(line):
                problems.append(
                    f"{rel}:{lineno}: naked lock()/unlock() call — hold "
                    "locks through the scoped MutexLock so early returns "
                    "cannot leak them"
                )
        if rel.startswith(ZERO_COPY_DIRS) and \
                MATERIALIZING_DECOMPRESS_RE.search(line):
            problems.append(
                f"{rel}:{lineno}: materializing Decompress() on the read "
                "path — use DecompressShared so stored blocks decode as "
                "zero-copy windows (Decompress is test-only)"
            )
        m = MUTABLE_DECL_RE.match(line)
        if m and MUTABLE_WAIVER not in raw_line:
            decl_type = m.group("type").strip()
            if "GUARDED_BY" in line or "PT_GUARDED_BY" in line:
                continue
            if MUTABLE_OK_TYPES.match(decl_type):
                continue
            problems.append(
                f"{rel}:{lineno}: mutable member of type '{decl_type}' "
                "without GUARDED_BY — state mutated through const paths "
                "needs a declared synchronization story (annotate it, make "
                f"it atomic, or waive with '// {MUTABLE_WAIVER} <reason>')"
            )
    return problems


def lint_tree(root: pathlib.Path) -> list[str]:
    problems = []
    src = root / "src"
    for path in sorted(src.rglob("*")):
        if path.suffix not in {".h", ".cc"}:
            continue
        rel = path.relative_to(root).as_posix()
        problems.extend(lint_file(path, rel))
    return problems


# --- self test ---------------------------------------------------------------

SELF_TEST_CASES = [
    # (snippet, expected substring in the violation, or None for clean;
    # optional third element overrides the lint-relative path)
    ("std::mutex mu_;", "raw std::mutex"),
    ("std::lock_guard<std::mutex> lock(mu_);", "raw std::lock_guard"),
    ("std::unique_lock<std::mutex> l(mu_);", "raw std::unique_lock"),
    ("std::condition_variable cv_;", "raw std::condition_variable"),
    ("mu_.lock();", "naked lock()"),
    ("mu_.Unlock();", "naked lock()"),
    ("mutable size_t count_ = 0;", "without GUARDED_BY"),
    ("mutable std::string cache_;", "without GUARDED_BY"),
    ("// std::mutex in a comment", None),
    ('const char* s = "std::mutex";', None),
    ("mutable Mutex mu_;", None),
    ("mutable std::atomic<uint64_t> reads_{0};", None),
    ("mutable size_t memo_ GUARDED_BY(mu_) = 0;", None),
    ("mutable size_t scratch_ = 0;  // lint: mutable-ok single-threaded", None),
    ("MutexLock lock(mu_);", None),
    ("auto raw = Decompress(value);", "materializing Decompress()",
     "src/tgi/selftest.cc"),
    ("auto raw = Decompress(value);", "materializing Decompress()",
     "src/kvstore/selftest.cc"),
    ("auto view = DecompressShared(value);", None, "src/tgi/selftest.cc"),
    # Outside the read-path layers the materializing form stays legal.
    ("auto raw = Decompress(value);", None, "src/common/selftest.cc"),
]


def self_test() -> int:
    failures = 0
    for case in SELF_TEST_CASES:
        snippet, expect = case[0], case[1]
        rel = case[2] if len(case) > 2 else "src/selftest.cc"
        tmp = pathlib.Path("/tmp") / "hgs_lint_selftest.cc"
        tmp.write_text(snippet + "\n", encoding="utf-8")
        problems = lint_file(tmp, rel)
        if expect is None:
            if problems:
                print(f"SELF-TEST FAIL (expected clean): {snippet!r} -> {problems}")
                failures += 1
        else:
            if not any(expect in p for p in problems):
                print(f"SELF-TEST FAIL (expected {expect!r}): {snippet!r} -> {problems}")
                failures += 1
    # The real tree must also be clean, so the self-test doubles as the gate.
    root = pathlib.Path(__file__).resolve().parent.parent
    tree_problems = lint_tree(root)
    for p in tree_problems:
        print(p)
    failures += len(tree_problems)
    print(f"lint_invariants self-test: {'FAIL' if failures else 'PASS'}")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in lint corpus, then lint src/")
    parser.add_argument("--root", type=pathlib.Path,
                        default=pathlib.Path(__file__).resolve().parent.parent,
                        help="repository root (default: parent of tools/)")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    problems = lint_tree(args.root)
    for p in problems:
        print(p)
    if problems:
        print(f"lint_invariants: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
